// ts_ckpt unit + property tests: CRC32C known answers, frame round-trips,
// snapshot encode/decode, damage tolerance (truncation at every byte and
// seeded bit flips must fail validation, never crash), Checkpointer rotation
// and damaged-snapshot fallback, and capture/restore determinism across
// different worker counts (the snapshot is keyed by session id, not by shard,
// so a restart may resize the worker pool).
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/analytics/session_digest.h"
#include "src/analytics/session_store.h"
#include "src/ckpt/async_checkpointer.h"
#include "src/ckpt/checkpoint.h"
#include "src/ckpt/checkpointer.h"
#include "src/ckpt/live_checkpoint.h"
#include "src/ckpt/snapshot_io.h"
#include "src/common/crc32c.h"
#include "src/common/rng.h"
#include "src/core/live_pipeline.h"
#include "src/log/wire_format.h"
#include "src/parse/template_miner.h"
#include "src/workload/generator.h"

namespace ts {
namespace {

std::vector<std::string> MakeLines(uint64_t seed, double records_per_sec,
                                   EventTime seconds) {
  GeneratorConfig config;
  config.seed = seed;
  config.duration_ns = seconds * kNanosPerSecond;
  config.target_records_per_sec = records_per_sec;
  TraceGenerator gen(config);
  std::vector<std::string> lines;
  Epoch epoch = 0;
  std::vector<LogRecord> records;
  while (gen.NextEpoch(&epoch, &records)) {
    for (const auto& r : records) {
      lines.push_back(ToWireFormat(r));
    }
  }
  return lines;
}

// A small but fully populated state: every section type present, so damage
// anywhere in the file hits a populated frame.
CheckpointState MakeState() {
  CheckpointState state;
  state.resume_offset = 1234;
  state.stream = 1;
  state.ingest_watermark = 5 * kNanosPerSecond;
  state.records = 1200;
  state.parse_failures = 34;
  state.store_inserted = 40;
  state.store_evicted = 3;

  const std::vector<std::string> lines = MakeLines(7, 500, 1);
  size_t next = 0;
  auto take_record = [&lines, &next] {
    auto parsed = ParseWireFormat(lines[next++ % lines.size()]);
    EXPECT_TRUE(parsed.has_value());
    return *parsed;
  };

  for (int i = 0; i < 3; ++i) {
    LiveCloserState::OpenFragment fragment;
    fragment.id = "open-" + std::to_string(i);
    fragment.last_time = (i + 1) * kNanosPerSecond;
    for (int r = 0; r <= i; ++r) {
      fragment.records.push_back(take_record());
    }
    state.closers.open.push_back(std::move(fragment));
  }
  for (int i = 0; i < 5; ++i) {
    state.closers.next_fragment.emplace_back("sess-" + std::to_string(i),
                                             static_cast<uint32_t>(i + 1));
  }
  for (int i = 0; i < 5; ++i) {
    Session s;
    s.id = "stored-" + std::to_string(i);
    s.fragment_index = static_cast<uint32_t>(i % 2);
    s.first_epoch = static_cast<Epoch>(i);
    s.last_epoch = static_cast<Epoch>(i + 2);
    s.closed_at = static_cast<Epoch>(i + 3);
    s.records.push_back(take_record());
    s.records.push_back(take_record());
    state.store_sessions.push_back(std::move(s));
  }
  // Miner state ('T' frame), mined from real text so groups carry wildcards.
  TemplateMiner miner;
  miner.Mine("request a12f completed in 20ms");
  miner.Mine("request 99ee completed in 7ms");
  miner.Mine("cache shard rebalanced");
  miner.Mine("");  // Catch-all hit.
  state.has_miner = true;
  state.miner = miner.Export();
  return state;
}

void ExpectStatesEqual(const CheckpointState& a, const CheckpointState& b) {
  EXPECT_EQ(a.resume_offset, b.resume_offset);
  EXPECT_EQ(a.stream, b.stream);
  EXPECT_EQ(a.ingest_watermark, b.ingest_watermark);
  EXPECT_EQ(a.records, b.records);
  EXPECT_EQ(a.parse_failures, b.parse_failures);
  EXPECT_EQ(a.store_inserted, b.store_inserted);
  EXPECT_EQ(a.store_evicted, b.store_evicted);
  ASSERT_EQ(a.closers.open.size(), b.closers.open.size());
  for (size_t i = 0; i < a.closers.open.size(); ++i) {
    EXPECT_EQ(a.closers.open[i].id, b.closers.open[i].id);
    EXPECT_EQ(a.closers.open[i].last_time, b.closers.open[i].last_time);
    ASSERT_EQ(a.closers.open[i].records.size(),
              b.closers.open[i].records.size());
    for (size_t r = 0; r < a.closers.open[i].records.size(); ++r) {
      EXPECT_EQ(ToWireFormat(a.closers.open[i].records[r]),
                ToWireFormat(b.closers.open[i].records[r]));
    }
  }
  EXPECT_EQ(a.closers.next_fragment, b.closers.next_fragment);
  ASSERT_EQ(a.store_sessions.size(), b.store_sessions.size());
  std::string canon_a, canon_b;
  for (size_t i = 0; i < a.store_sessions.size(); ++i) {
    EXPECT_EQ(SessionDigest(a.store_sessions[i], &canon_a),
              SessionDigest(b.store_sessions[i], &canon_b));
  }
  EXPECT_EQ(a.has_miner, b.has_miner);
  EXPECT_TRUE(a.miner == b.miner);
}

// --- CRC32C ---

TEST(CkptCrc32c, KnownAnswers) {
  // RFC 3720 / iSCSI test vector.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
  // 32 bytes of zeros, another standard vector.
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
}

TEST(CkptCrc32c, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32c(data);
  for (size_t split = 0; split <= data.size(); ++split) {
    const uint32_t part = Crc32c(data.substr(split), Crc32c(data.substr(0, split)));
    EXPECT_EQ(part, whole) << "split at " << split;
  }
}

// --- Frame container ---

TEST(CkptFrames, RoundTripAndStrictEnd) {
  std::string buffer;
  const std::vector<std::string> payloads = {"a", std::string(1000, 'x'), "",
                                             std::string("\0\n|", 3)};
  for (const auto& p : payloads) {
    AppendFrame(&buffer, p);
  }
  FrameParser parser(buffer);
  std::string_view payload;
  for (const auto& p : payloads) {
    ASSERT_TRUE(parser.Next(&payload));
    EXPECT_EQ(payload, p);
  }
  EXPECT_FALSE(parser.Next(&payload));
  EXPECT_TRUE(parser.AtEnd());
}

TEST(CkptFrames, OversizedLengthRejectedWithoutAllocating) {
  std::string buffer;
  PutU32(&buffer, 0xFFFFFFFFu);  // Length far beyond kMaxFramePayloadBytes.
  PutU32(&buffer, 0);
  FrameParser parser(buffer);
  std::string_view payload;
  EXPECT_FALSE(parser.Next(&payload));
  EXPECT_FALSE(parser.ok());
  EXPECT_FALSE(parser.AtEnd());
}

TEST(CkptFrames, ByteCursorUnderflowIsSafe) {
  std::string buffer;
  PutU32(&buffer, 7);
  ByteCursor cursor{buffer, 0};
  uint64_t v64 = 0;
  EXPECT_FALSE(cursor.GetU64(&v64));  // Only 4 bytes available.
  uint32_t v32 = 0;
  EXPECT_TRUE(cursor.GetU32(&v32));
  EXPECT_EQ(v32, 7u);
  std::string_view bytes;
  EXPECT_FALSE(cursor.GetBytes(&bytes));  // No length prefix left.
}

// --- Snapshot encode/decode ---

TEST(CkptSnapshot, EncodeDecodeRoundTrip) {
  const CheckpointState state = MakeState();
  const std::string bytes = EncodeSnapshot(state);
  CheckpointState decoded;
  ASSERT_TRUE(DecodeSnapshot(bytes, &decoded));
  ExpectStatesEqual(state, decoded);
}

TEST(CkptSnapshot, EmptyStateRoundTrips) {
  CheckpointState state;  // Cold checkpoint: offset 0, nothing open or stored.
  const std::string bytes = EncodeSnapshot(state);
  CheckpointState decoded;
  ASSERT_TRUE(DecodeSnapshot(bytes, &decoded));
  ExpectStatesEqual(state, decoded);
}

TEST(CkptSnapshot, PartsEncodingMatchesMonolithic) {
  const CheckpointState state = MakeState();
  const std::string monolithic = EncodeSnapshot(state);

  // Store section pre-encoded (the incremental-cache shape): byte-identical,
  // because the store section is the last one in the head.
  {
    CheckpointState no_store = MakeState();
    std::string store_frames;
    StoreFrameEncoder store_encoder;
    for (const auto& s : no_store.store_sessions) {
      store_encoder.Append(s, &store_frames);
    }
    const uint64_t store_count = no_store.store_sessions.size();
    no_store.store_sessions.clear();
    std::string head, tail;
    EncodeSnapshotParts(no_store, 0, store_count, &head, &tail);
    EXPECT_EQ(head + store_frames + tail, monolithic);
  }

  // Open + store sections both pre-encoded (the async-writer shape): frame
  // order differs from the monolithic layout, but the decoder accepts
  // sections in any order and the decoded state must match exactly.
  {
    CheckpointState skeleton = MakeState();
    std::string open_frames, store_frames;
    OpenFrameEncoder open_encoder;
    StoreFrameEncoder store_encoder;
    for (const auto& f : skeleton.closers.open) {
      open_encoder.Append(f.id, f.last_time, f.records, &open_frames);
    }
    for (const auto& s : skeleton.store_sessions) {
      store_encoder.Append(s, &store_frames);
    }
    const uint64_t open_count = skeleton.closers.open.size();
    const uint64_t store_count = skeleton.store_sessions.size();
    skeleton.closers.open.clear();
    skeleton.store_sessions.clear();
    std::string head, tail;
    EncodeSnapshotParts(skeleton, open_count, store_count, &head, &tail);
    CheckpointState decoded;
    ASSERT_TRUE(
        DecodeSnapshot(head + open_frames + store_frames + tail, &decoded));
    ExpectStatesEqual(state, decoded);
  }
}

TEST(CkptTemplateFrame, MinerStateRoundTripsThroughSnapshot) {
  // The 'T' frame must restore the miner exactly: same ids, same vars, same
  // internal state, so a kill -9 -> restore continues byte-identically.
  TemplateMiner miner;
  for (int i = 0; i < 500; ++i) {
    miner.Mine("user " + std::to_string(i % 17) + " fetched profile in " +
               std::to_string(i) + "ms");
  }
  CheckpointState state;
  state.has_miner = true;
  state.miner = miner.Export();
  const std::string bytes = EncodeSnapshot(state);
  CheckpointState decoded;
  ASSERT_TRUE(DecodeSnapshot(bytes, &decoded));
  ASSERT_TRUE(decoded.has_miner);
  TemplateMiner restored;
  ASSERT_TRUE(restored.Import(decoded.miner));
  std::vector<std::string_view> v1, v2;
  for (int i = 0; i < 100; ++i) {
    const std::string p =
        "user 3 fetched profile in " + std::to_string(1000 + i) + "ms";
    ASSERT_EQ(miner.Mine(p, &v1), restored.Mine(p, &v2));
    ASSERT_EQ(v1, v2);
  }
  EXPECT_TRUE(miner.Export() == restored.Export());
}

TEST(CkptTemplateFrame, AbsentMinerDecodesAsAbsent) {
  // Mining-disabled pipelines write no 'T' frame; the header says so and the
  // decode yields has_miner == false.
  const CheckpointState state;
  const std::string bytes = EncodeSnapshot(state);
  CheckpointState decoded;
  ASSERT_TRUE(DecodeSnapshot(bytes, &decoded));
  EXPECT_FALSE(decoded.has_miner);
  EXPECT_TRUE(decoded.miner.nodes.empty());
}

TEST(CkptSnapshot, TruncationAtEveryByteFailsValidation) {
  const std::string bytes = EncodeSnapshot(MakeState());
  ASSERT_GT(bytes.size(), 100u);
  // Every strict prefix — which covers every frame boundary and every torn
  // write inside a frame — must be rejected as a whole, never half-loaded.
  for (size_t len = 0; len < bytes.size(); ++len) {
    CheckpointState decoded;
    EXPECT_FALSE(DecodeSnapshot(std::string_view(bytes.data(), len), &decoded))
        << "prefix of " << len << " bytes decoded";
  }
}

TEST(CkptSnapshot, SeededBitFlipsFailValidation) {
  std::string bytes = EncodeSnapshot(MakeState());
  Rng rng(0xC4C4C4C4ULL);
  for (int trial = 0; trial < 512; ++trial) {
    const size_t byte = static_cast<size_t>(rng.NextBelow(bytes.size()));
    const char flip = static_cast<char>(1u << rng.NextBelow(8));
    bytes[byte] ^= flip;
    CheckpointState decoded;
    EXPECT_FALSE(DecodeSnapshot(bytes, &decoded))
        << "bit flip at byte " << byte << " decoded";
    bytes[byte] ^= flip;  // Restore for the next trial.
  }
  CheckpointState decoded;
  EXPECT_TRUE(DecodeSnapshot(bytes, &decoded));  // Restores were exact.
}

TEST(CkptSnapshot, TrailingGarbageAndFrameTamperingRejected) {
  const CheckpointState state = MakeState();
  std::string bytes = EncodeSnapshot(state);
  CheckpointState decoded;

  // Valid bytes followed by a spare valid frame: the footer must be last.
  std::string trailing = bytes;
  AppendFrame(&trailing, "Z");
  EXPECT_FALSE(DecodeSnapshot(trailing, &decoded));

  // Dropping one mid-file frame breaks the header's section counts even
  // though every remaining frame still carries a valid CRC.
  FrameParser parser(bytes);
  std::string_view payload;
  ASSERT_TRUE(parser.Next(&payload));  // Header.
  const size_t first_len = 8 + payload.size();
  ASSERT_TRUE(parser.Next(&payload));  // First 'O' frame.
  const size_t second_len = 8 + payload.size();
  std::string dropped = bytes.substr(0, first_len) +
                        bytes.substr(first_len + second_len);
  EXPECT_FALSE(DecodeSnapshot(dropped, &decoded));
}

// --- Checkpointer: rotation, fallback, atomic writes ---

class CkptRotation : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "ts_ckpt_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           "_" + std::to_string(::getpid());
    // Fresh directory per test; stale files would change rotation counts.
    std::string cmd = "rm -rf '" + dir_ + "'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }

  CheckpointState StateAtOffset(uint64_t offset) {
    CheckpointState state = MakeState();
    state.resume_offset = offset;
    return state;
  }

  std::string dir_;
};

TEST_F(CkptRotation, RetainsNewestKAndRestoresLatest) {
  CheckpointerOptions options;
  options.dir = dir_;
  options.retain = 3;
  options.interval_ms = 0;
  Checkpointer ckpt(options);
  for (uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(ckpt.Write(StateAtOffset(i * 100)));
  }
  EXPECT_EQ(ckpt.ListSnapshots().size(), 3u);

  CheckpointState state;
  const RestoreResult rr = ckpt.RestoreLatest(&state);
  EXPECT_TRUE(rr.restored);
  EXPECT_EQ(rr.fallbacks, 0u);
  EXPECT_EQ(state.resume_offset, 500u);
  // The atomic-rename protocol never leaves a temp file behind.
  EXPECT_NE(::access((rr.path + ".tmp").c_str(), F_OK), 0);
}

TEST_F(CkptRotation, DamagedNewestFallsBackToPrevious) {
  CheckpointerOptions options;
  options.dir = dir_;
  options.interval_ms = 0;
  Checkpointer ckpt(options);
  ASSERT_TRUE(ckpt.Write(StateAtOffset(100)));
  ASSERT_TRUE(ckpt.Write(StateAtOffset(200)));

  // Truncate the newest snapshot in place — a torn write that somehow
  // survived rename (e.g. media damage) rather than a crashed writer.
  const std::vector<uint64_t> seqs = ckpt.ListSnapshots();
  ASSERT_EQ(seqs.size(), 2u);
  const std::string newest = ckpt.SnapshotPath(seqs.back());
  std::string bytes;
  ASSERT_TRUE(ReadFile(newest, &bytes));
  FILE* f = std::fopen(newest.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fwrite(bytes.data(), 1, bytes.size() / 2, f);
  std::fclose(f);

  CheckpointState state;
  const RestoreResult rr = ckpt.RestoreLatest(&state);
  EXPECT_TRUE(rr.restored);
  EXPECT_EQ(rr.fallbacks, 1u);
  EXPECT_EQ(state.resume_offset, 100u);
}

TEST_F(CkptRotation, AllSnapshotsDamagedMeansColdStartNotCrash) {
  CheckpointerOptions options;
  options.dir = dir_;
  options.interval_ms = 0;
  Checkpointer ckpt(options);
  ASSERT_TRUE(ckpt.Write(StateAtOffset(100)));
  ASSERT_TRUE(ckpt.Write(StateAtOffset(200)));
  for (uint64_t seq : ckpt.ListSnapshots()) {
    FILE* f = std::fopen(ckpt.SnapshotPath(seq).c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("not a snapshot", f);
    std::fclose(f);
  }
  CheckpointState state;
  const RestoreResult rr = ckpt.RestoreLatest(&state);
  EXPECT_FALSE(rr.restored);
  EXPECT_EQ(rr.fallbacks, 2u);
  EXPECT_EQ(state.resume_offset, 0u);  // Cold start replays from scratch.
}

TEST_F(CkptRotation, SequenceNumbersContinueAcrossRestart) {
  CheckpointerOptions options;
  options.dir = dir_;
  options.interval_ms = 0;
  {
    Checkpointer ckpt(options);
    ASSERT_TRUE(ckpt.Write(StateAtOffset(100)));
    ASSERT_TRUE(ckpt.Write(StateAtOffset(200)));
  }
  Checkpointer reopened(options);
  ASSERT_TRUE(reopened.Write(StateAtOffset(300)));
  const std::vector<uint64_t> seqs = reopened.ListSnapshots();
  ASSERT_EQ(seqs.size(), 3u);
  // Strictly increasing: the reopened writer never reuses (and so never
  // clobbers) a sequence number from the previous incarnation.
  EXPECT_LT(seqs[0], seqs[1]);
  EXPECT_LT(seqs[1], seqs[2]);
  CheckpointState state;
  EXPECT_TRUE(reopened.RestoreLatest(&state).restored);
  EXPECT_EQ(state.resume_offset, 300u);
}

// --- Capture/restore through a live pipeline, across worker counts ---

struct DigestRun {
  uint64_t sessions = 0;
  uint64_t xor_digest = 0;
  uint64_t store_digest = 0;
};

// Feeds `lines`, capturing a checkpoint after `split` lines, restoring it
// into a second pipeline with a different worker count, and feeding the rest.
// With split == lines.size() the capture is still mid-stream (nothing is
// force-closed); split == 0 degenerates to a cold start.
DigestRun RunWithHandoff(const std::vector<std::string>& lines, size_t split,
                         size_t workers_a, size_t workers_b) {
  SessionStore::Options store_options;
  store_options.max_bytes = 1ull << 30;
  CheckpointState snapshot;
  {
    SessionStore store_a(store_options);
    LivePipelineOptions options_a;
    options_a.workers = workers_a;
    LivePipeline pipeline_a(options_a, [&store_a](Session&& s) {
      store_a.Insert(std::move(s));
    });
    for (size_t i = 0; i < split; ++i) {
      pipeline_a.FeedLine(lines[i]);
    }
    CheckpointState captured =
        CaptureLiveCheckpoint(&pipeline_a, store_a, split);
    // Round-trip through the wire format, exactly like a real restart.
    const std::string bytes = EncodeSnapshot(captured);
    EXPECT_TRUE(DecodeSnapshot(bytes, &snapshot));
    // pipeline_a is abandoned here: its post-capture state is "lost in the
    // crash" along with store_a.
  }

  DigestRun result;
  SessionStore store_b(store_options);
  std::mutex mu;
  std::set<std::string> ids;
  LivePipelineOptions options_b;
  options_b.workers = workers_b;
  LivePipeline pipeline_b(options_b, [&](Session&& s) {
    thread_local std::string scratch;
    const uint64_t d = SessionDigest(s, &scratch);
    {
      std::lock_guard<std::mutex> lock(mu);
      result.xor_digest ^= d;
      ++result.sessions;
      ids.insert(s.id);
    }
    store_b.Insert(std::move(s));
  });
  RestoreLiveCheckpoint(std::move(snapshot), &pipeline_b, &store_b);
  // Sessions the snapshot already holds count toward the multiset digest.
  std::string scratch;
  store_b.ForEachSession([&](const Session& s) {
    result.xor_digest ^= SessionDigest(s, &scratch);
    ++result.sessions;
    ids.insert(s.id);
  });
  for (size_t i = split; i < lines.size(); ++i) {
    pipeline_b.FeedLine(lines[i]);
  }
  pipeline_b.Finish();
  result.store_digest = ChainedStoreDigest(store_b, ids);
  return result;
}

TEST(CkptRecoveryDeterminism, HandoffMatchesStraightRunAcrossWorkerCounts) {
  const std::vector<std::string> lines = MakeLines(21, 2'000, 2);
  ASSERT_GT(lines.size(), 1'000u);
  // Reference: no handoff at all (split at 0 into the same pipeline shape).
  const DigestRun reference =
      RunWithHandoff(lines, 0, /*workers_a=*/1, /*workers_b=*/2);
  ASSERT_GT(reference.sessions, 0u);

  const size_t splits[] = {1, lines.size() / 3, lines.size() / 2,
                           lines.size() - 1, lines.size()};
  const size_t worker_pairs[][2] = {{1, 1}, {1, 4}, {4, 1}, {3, 2}};
  for (const size_t split : splits) {
    for (const auto& pair : worker_pairs) {
      const DigestRun run = RunWithHandoff(lines, split, pair[0], pair[1]);
      EXPECT_EQ(run.sessions, reference.sessions)
          << "split " << split << " workers " << pair[0] << "->" << pair[1];
      EXPECT_EQ(run.xor_digest, reference.xor_digest)
          << "split " << split << " workers " << pair[0] << "->" << pair[1];
      EXPECT_EQ(run.store_digest, reference.store_digest)
          << "split " << split << " workers " << pair[0] << "->" << pair[1];
    }
  }
}

TEST(CkptRecoveryDeterminism, CheckpointerEndToEndThroughDisk) {
  const std::vector<std::string> lines = MakeLines(23, 1'000, 1);
  ASSERT_GT(lines.size(), 200u);

  CheckpointerOptions options;
  options.dir = ::testing::TempDir() + "ts_ckpt_e2e_" +
                std::to_string(::getpid());
  options.interval_ms = 0;
  std::string cmd = "rm -rf '" + options.dir + "'";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  Checkpointer ckpt(options);

  SessionStore::Options store_options;
  store_options.max_bytes = 1ull << 30;
  {
    SessionStore store(store_options);
    LivePipelineOptions pipe_options;
    pipe_options.workers = 2;
    LivePipeline pipeline(pipe_options,
                          [&store](Session&& s) { store.Insert(std::move(s)); });
    const size_t split = lines.size() / 2;
    for (size_t i = 0; i < split; ++i) {
      pipeline.FeedLine(lines[i]);
    }
    ASSERT_TRUE(ckpt.Write(CaptureLiveCheckpoint(&pipeline, store, split)));
  }

  CheckpointState state;
  ASSERT_TRUE(ckpt.RestoreLatest(&state).restored);
  EXPECT_EQ(state.resume_offset, lines.size() / 2);

  DigestRun resumed;
  SessionStore store(store_options);
  std::set<std::string> ids;
  std::mutex mu;
  LivePipelineOptions pipe_options;
  pipe_options.workers = 3;
  LivePipeline pipeline(pipe_options, [&](Session&& s) {
    thread_local std::string scratch;
    const uint64_t d = SessionDigest(s, &scratch);
    {
      std::lock_guard<std::mutex> lock(mu);
      resumed.xor_digest ^= d;
      ++resumed.sessions;
      ids.insert(s.id);
    }
    store.Insert(std::move(s));
  });
  RestoreLiveCheckpoint(std::move(state), &pipeline, &store);
  std::string scratch;
  store.ForEachSession([&](const Session& s) {
    resumed.xor_digest ^= SessionDigest(s, &scratch);
    ++resumed.sessions;
    ids.insert(s.id);
  });
  for (size_t i = lines.size() / 2; i < lines.size(); ++i) {
    pipeline.FeedLine(lines[i]);
  }
  pipeline.Finish();
  resumed.store_digest = ChainedStoreDigest(store, ids);

  const DigestRun reference = RunWithHandoff(lines, 0, 1, 2);
  EXPECT_EQ(resumed.sessions, reference.sessions);
  EXPECT_EQ(resumed.xor_digest, reference.xor_digest);
  EXPECT_EQ(resumed.store_digest, reference.store_digest);
}

// The async writer's full path — two-phase barrier, open-fragment visitor,
// incremental store-frame cache, scatter write — must produce snapshots a
// restart resumes from with digests identical to a crash-free run. A short
// inactivity window keeps sessions closing throughout the trace, so the
// snapshots carry non-trivial open AND store sections.
TEST(CkptRecoveryDeterminism, AsyncCheckpointerEndToEndThroughDisk) {
  const std::vector<std::string> lines = MakeLines(29, 1'500, 2);
  ASSERT_GT(lines.size(), 400u);
  const size_t split = lines.size() / 2;
  const EventTime inactivity_ns = kNanosPerSecond / 2;

  const auto run_digests = [&](SessionStore* store, DigestRun* out,
                               std::mutex* mu, std::set<std::string>* ids) {
    // Shared sink body: XOR-multiset digest + id set + store insert.
    return [=](Session&& s) {
      thread_local std::string scratch;
      const uint64_t d = SessionDigest(s, &scratch);
      {
        std::lock_guard<std::mutex> lock(*mu);
        out->xor_digest ^= d;
        ++out->sessions;
        ids->insert(s.id);
      }
      store->Insert(std::move(s));
    };
  };

  CheckpointerOptions options;
  options.dir = ::testing::TempDir() + "ts_ckpt_async_e2e_" +
                std::to_string(::getpid());
  options.interval_ms = 0;
  std::string cmd = "rm -rf '" + options.dir + "'";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  Checkpointer ckpt(options);

  SessionStore::Options store_options;
  store_options.max_bytes = 1ull << 30;
  {
    SessionStore store(store_options);
    LivePipelineOptions pipe_options;
    pipe_options.workers = 2;
    pipe_options.inactivity_ns = inactivity_ns;
    LivePipeline pipeline(pipe_options,
                          [&store](Session&& s) { store.Insert(std::move(s)); });
    AsyncCheckpointer async_ckpt(&ckpt, &pipeline, &store,
                                 AsyncCheckpointer::Options{});
    // Several drained snapshots so the incremental cache advances across
    // snapshots instead of being exercised only once.
    for (size_t i = 0; i < split; ++i) {
      pipeline.FeedLine(lines[i]);
      if ((i + 1) % (split / 3) == 0) {
        pipeline.Flush();
        ASSERT_TRUE(async_ckpt.RequestCheckpoint(i + 1));
        async_ckpt.Drain();
      }
    }
    ASSERT_TRUE(async_ckpt.RequestCheckpoint(split));
    async_ckpt.Drain();
    EXPECT_GE(ckpt.snapshots_taken(), 4u);
    EXPECT_GT(store.stats().inserted, 0u);  // Store section was non-trivial.
    // The pipeline keeps running past the last snapshot; everything after it
    // is "lost in the crash".
    for (size_t i = split; i < lines.size(); ++i) {
      pipeline.FeedLine(lines[i]);
    }
  }

  CheckpointState state;
  ASSERT_TRUE(ckpt.RestoreLatest(&state).restored);
  ASSERT_EQ(state.resume_offset, split);

  DigestRun resumed;
  {
    SessionStore store(store_options);
    std::set<std::string> ids;
    std::mutex mu;
    LivePipelineOptions pipe_options;
    pipe_options.workers = 3;
    pipe_options.inactivity_ns = inactivity_ns;
    LivePipeline pipeline(
        pipe_options, run_digests(&store, &resumed, &mu, &ids));
    RestoreLiveCheckpoint(std::move(state), &pipeline, &store);
    std::string scratch;
    store.ForEachSession([&](const Session& s) {
      resumed.xor_digest ^= SessionDigest(s, &scratch);
      ++resumed.sessions;
      ids.insert(s.id);
    });
    for (size_t i = split; i < lines.size(); ++i) {
      pipeline.FeedLine(lines[i]);
    }
    pipeline.Finish();
    resumed.store_digest = ChainedStoreDigest(store, ids);
  }

  // Reference: the same trace through one crash-free pipeline.
  DigestRun reference;
  {
    SessionStore store(store_options);
    std::set<std::string> ids;
    std::mutex mu;
    LivePipelineOptions pipe_options;
    pipe_options.workers = 2;
    pipe_options.inactivity_ns = inactivity_ns;
    LivePipeline pipeline(
        pipe_options, run_digests(&store, &reference, &mu, &ids));
    for (const auto& l : lines) {
      pipeline.FeedLine(l);
    }
    pipeline.Finish();
    reference.store_digest = ChainedStoreDigest(store, ids);
  }
  ASSERT_GT(reference.sessions, 0u);
  EXPECT_EQ(resumed.sessions, reference.sessions);
  EXPECT_EQ(resumed.xor_digest, reference.xor_digest);
  EXPECT_EQ(resumed.store_digest, reference.store_digest);
}

// Store eviction between snapshots must drop evicted entries off the cache
// front: the snapshot's store section always equals the store's live content.
TEST(CkptRecoveryDeterminism, AsyncCheckpointerCacheTracksEviction) {
  const std::vector<std::string> lines = MakeLines(31, 2'000, 2);
  ASSERT_GT(lines.size(), 400u);

  CheckpointerOptions options;
  options.dir = ::testing::TempDir() + "ts_ckpt_async_evict_" +
                std::to_string(::getpid());
  options.interval_ms = 0;
  std::string cmd = "rm -rf '" + options.dir + "'";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  Checkpointer ckpt(options);

  SessionStore::Options store_options;
  store_options.max_bytes = 64 << 10;  // Tight: forces continuous eviction.
  SessionStore store(store_options);
  LivePipelineOptions pipe_options;
  pipe_options.workers = 2;
  pipe_options.inactivity_ns = kNanosPerSecond / 5;  // Sessions close early.
  LivePipeline pipeline(pipe_options,
                        [&store](Session&& s) { store.Insert(std::move(s)); });
  AsyncCheckpointer async_ckpt(&ckpt, &pipeline, &store,
                               AsyncCheckpointer::Options{});
  size_t fed = 0;
  for (const auto& l : lines) {
    pipeline.FeedLine(l);
    if (++fed % (lines.size() / 5) == 0) {
      pipeline.Flush();
      ASSERT_TRUE(async_ckpt.RequestCheckpoint(fed));
      // Drained and the ingest thread is not feeding: the shards are idle, so
      // the live store is exactly the barrier-aligned store.
      async_ckpt.Drain();

      CheckpointState state;
      ASSERT_TRUE(ckpt.RestoreLatest(&state).restored);
      std::vector<uint64_t> live;
      std::string scratch;
      store.ForEachSession([&](const Session& s) {
        live.push_back(SessionDigest(s, &scratch));
      });
      ASSERT_EQ(state.store_sessions.size(), live.size());
      for (size_t i = 0; i < live.size(); ++i) {
        EXPECT_EQ(SessionDigest(state.store_sessions[i], &scratch), live[i]);
      }
    }
  }
  async_ckpt.Drain();
  EXPECT_GT(store.stats().evicted, 0u);  // The scenario really evicted.
}

}  // namespace
}  // namespace ts
