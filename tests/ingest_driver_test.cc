// End-to-end ingestion tests: Replayer -> IngestDriver (re-order + epoch
// batching) -> dataflow input, verifying conservation, epoch assignment, and
// gating.
#include <atomic>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/replay/ingest_driver.h"
#include "src/timely/timely.h"

namespace ts {
namespace {

GeneratorConfig SmallGen() {
  GeneratorConfig config;
  config.seed = 55;
  config.duration_ns = 6 * kNanosPerSecond;
  config.target_records_per_sec = 4'000;
  return config;
}

ReplayerConfig SmallReplay(size_t workers, bool as_text) {
  ReplayerConfig config;
  config.num_servers = 4;
  config.num_processes = 32;
  config.num_workers = workers;
  config.as_text = as_text;
  return config;
}

struct IngestResult {
  uint64_t records_fed = 0;
  uint64_t out_of_epoch = 0;
  uint64_t reorder_dropped = 0;
  uint64_t parse_failures = 0;
  std::map<Epoch, IngestDriver::EpochIngest> epochs;
};

IngestResult RunIngest(size_t workers, bool as_text, EventTime slack_ns,
                       bool gated) {
  auto result = std::make_shared<IngestResult>();
  auto replayer =
      std::make_shared<Replayer>(SmallReplay(workers, as_text), SmallGen());
  std::atomic<uint64_t> fed{0};
  std::atomic<uint64_t> out_of_epoch{0};
  std::atomic<uint64_t> dropped{0};
  std::atomic<uint64_t> parse_failures{0};
  std::mutex epochs_mu;

  Computation::Options options;
  options.workers = workers;
  Computation::Run(options, [&](Scope& scope) {
    auto [input, stream] = scope.NewInput<LogRecord>("logs");
    // Sink checks every record's epoch assignment.
    auto counted = scope.Unary<LogRecord, Unit>(
        stream, Partition<LogRecord>::Pipeline(), "check",
        [&fed, &out_of_epoch](Epoch e, std::vector<LogRecord>& data,
                              OutputSession<Unit>& out, NotificatorHandle&) {
          for (const auto& r : data) {
            fed.fetch_add(1, std::memory_order_relaxed);
            if (static_cast<Epoch>(r.time / kNanosPerSecond) != e) {
              out_of_epoch.fetch_add(1, std::memory_order_relaxed);
            }
          }
          out.Give(e, Unit{});
          data.clear();
        },
        [](Epoch, OutputSession<Unit>&, NotificatorHandle&) {});
    auto probe = scope.Probe(counted, "probe");

    IngestDriver::Options opts;
    opts.slack_ns = slack_ns;
    auto driver = std::make_shared<IngestDriver>(
        replayer.get(), scope.worker_index(), input, opts);
    if (gated) {
      driver->SetGate(probe);
    }
    scope.AddDriver([driver, &dropped, &parse_failures, result,
                     &epochs_mu]() -> DriverStatus {
      const DriverStatus status = driver->Step();
      if (status == DriverStatus::kFinished) {
        dropped.fetch_add(driver->reorder_stats().discarded_late);
        parse_failures.fetch_add(driver->parse_failures());
        std::lock_guard<std::mutex> lock(epochs_mu);
        for (const auto& [e, ingest] : driver->epochs()) {
          auto& agg = result->epochs[e];
          agg.records += ingest.records;
          agg.input_cpu_ns += ingest.input_cpu_ns;
        }
      }
      return status;
    });
  });

  result->records_fed = fed.load();
  result->out_of_epoch = out_of_epoch.load();
  result->reorder_dropped = dropped.load();
  result->parse_failures = parse_failures.load();
  return *result;
}

uint64_t GeneratedRecords() {
  TraceGenerator gen(SmallGen());
  Epoch e;
  std::vector<LogRecord> r;
  uint64_t total = 0;
  while (gen.NextEpoch(&e, &r)) {
    total += r.size();
  }
  return total;
}

TEST(IngestDriver, ConservesRecordsAndAssignsEpochsByEventTime) {
  const uint64_t generated = GeneratedRecords();
  auto result = RunIngest(/*workers=*/1, /*as_text=*/true, /*slack=*/2 * kNanosPerSecond,
                          /*gated=*/false);
  EXPECT_EQ(result.parse_failures, 0u);
  EXPECT_EQ(result.records_fed + result.reorder_dropped, generated);
  EXPECT_EQ(result.out_of_epoch, 0u);
  // With 2s slack vs <1s flush intervals, nothing should be dropped.
  EXPECT_EQ(result.reorder_dropped, 0u);
  // Ingestion CPU was attributed.
  int64_t total_cpu = 0;
  uint64_t total_records = 0;
  for (const auto& [e, ingest] : result.epochs) {
    total_cpu += ingest.input_cpu_ns;
    total_records += ingest.records;
  }
  EXPECT_GT(total_cpu, 0);
  EXPECT_EQ(total_records, result.records_fed);
}

TEST(IngestDriver, MultiWorkerConservation) {
  const uint64_t generated = GeneratedRecords();
  auto result =
      RunIngest(/*workers=*/3, true, 2 * kNanosPerSecond, /*gated=*/false);
  EXPECT_EQ(result.records_fed + result.reorder_dropped, generated);
  EXPECT_EQ(result.out_of_epoch, 0u);
  EXPECT_EQ(result.reorder_dropped, 0u);
}

TEST(IngestDriver, GatedModeStillConserves) {
  const uint64_t generated = GeneratedRecords();
  auto result = RunIngest(/*workers=*/2, false, 2 * kNanosPerSecond, /*gated=*/true);
  EXPECT_EQ(result.records_fed + result.reorder_dropped, generated);
  EXPECT_EQ(result.reorder_dropped, 0u);
}

TEST(IngestDriver, TightSlackDropsLateRecordsButStaysOrdered) {
  // Slack far below the flush interval: late records must be discarded, the
  // rest still fed with correct epochs.
  const uint64_t generated = GeneratedRecords();
  auto result = RunIngest(1, false, /*slack=*/20 * kNanosPerMilli, false);
  EXPECT_GT(result.reorder_dropped, 0u);
  EXPECT_EQ(result.records_fed + result.reorder_dropped, generated);
  EXPECT_EQ(result.out_of_epoch, 0u);
}

}  // namespace
}  // namespace ts
