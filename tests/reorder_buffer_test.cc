// Unit and property tests for the pigeonhole re-order buffer (§4.1).
#include <algorithm>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/reorder_buffer.h"

namespace ts {
namespace {

LogRecord Rec(EventTime t, int seq = 0) {
  LogRecord r;
  r.time = t;
  r.session_id = "S" + std::to_string(seq);
  r.txn_id = *TxnId::Parse("1");
  return r;
}

std::vector<EventTime> Times(const std::vector<LogRecord>& records) {
  std::vector<EventTime> out;
  out.reserve(records.size());
  for (const auto& r : records) {
    out.push_back(r.time);
  }
  return out;
}

TEST(ReorderBuffer, RestoresOrderWithinSlack) {
  ReorderBuffer buf({.slack_ns = 100, .slot_width_ns = 10});
  std::vector<LogRecord> out;
  // Out-of-order input, all within slack of one another.
  for (EventTime t : {50, 20, 70, 10, 60, 30}) {
    buf.Push(Rec(t), &out);
  }
  EXPECT_TRUE(out.empty());  // Nothing beyond least+slack yet.
  buf.FlushAll(&out);
  EXPECT_EQ(Times(out), (std::vector<EventTime>{10, 20, 30, 50, 60, 70}));
  EXPECT_EQ(buf.stats().accepted, 6u);
  EXPECT_EQ(buf.stats().discarded_late, 0u);
  EXPECT_EQ(buf.stats().emitted, 6u);
}

TEST(ReorderBuffer, AdvancingRecordFlushesOldSlots) {
  ReorderBuffer buf({.slack_ns = 100, .slot_width_ns = 10});
  std::vector<LogRecord> out;
  buf.Push(Rec(5), &out);
  buf.Push(Rec(15), &out);
  EXPECT_TRUE(out.empty());
  // t=250 advances the watermark to 150: everything below is released.
  buf.Push(Rec(250), &out);
  EXPECT_EQ(Times(out), (std::vector<EventTime>{5, 15}));
  EXPECT_EQ(buf.watermark(), 150);
}

TEST(ReorderBuffer, DiscardsRecordsBelowWatermark) {
  ReorderBuffer buf({.slack_ns = 100, .slot_width_ns = 10});
  std::vector<LogRecord> out;
  buf.Push(Rec(500), &out);
  buf.Push(Rec(700), &out);  // Watermark -> 600.
  buf.Push(Rec(100), &out);  // Far too late.
  EXPECT_EQ(buf.stats().discarded_late, 1u);
  buf.FlushAll(&out);
  EXPECT_EQ(Times(out), (std::vector<EventTime>{500, 700}));
}

TEST(ReorderBuffer, FlushUpToReleasesCompletedSlotsOnly) {
  ReorderBuffer buf({.slack_ns = 1000, .slot_width_ns = 10});
  std::vector<LogRecord> out;
  buf.Push(Rec(5), &out);
  buf.Push(Rec(25), &out);
  buf.Push(Rec(45), &out);
  buf.FlushUpTo(30, &out);
  EXPECT_EQ(Times(out), (std::vector<EventTime>{5, 25}));
  EXPECT_EQ(buf.buffered_records(), 1u);
  // Watermark advanced: a record at t=7 is now late.
  buf.Push(Rec(7), &out);
  EXPECT_EQ(buf.stats().discarded_late, 1u);
}

TEST(ReorderBuffer, TracksBufferedBytes) {
  ReorderBuffer buf({.slack_ns = kNanosPerSecond, .slot_width_ns = kNanosPerMilli});
  std::vector<LogRecord> out;
  EXPECT_EQ(buf.buffered_bytes(), 0u);
  buf.Push(Rec(100), &out);
  buf.Push(Rec(200), &out);
  const size_t with_two = buf.buffered_bytes();
  EXPECT_GT(with_two, 0u);
  buf.FlushAll(&out);
  EXPECT_EQ(buf.buffered_bytes(), 0u);
  EXPECT_EQ(buf.buffered_records(), 0u);
}

TEST(ReorderBuffer, StableOrderForEqualTimestamps) {
  ReorderBuffer buf({.slack_ns = 100, .slot_width_ns = 10});
  std::vector<LogRecord> out;
  buf.Push(Rec(42, 1), &out);
  buf.Push(Rec(42, 2), &out);
  buf.Push(Rec(42, 3), &out);
  buf.FlushAll(&out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].session_id, "S1");
  EXPECT_EQ(out[1].session_id, "S2");
  EXPECT_EQ(out[2].session_id, "S3");
}

// Property sweep: for random streams with bounded lateness <= slack, the
// buffer must emit every record exactly once in nondecreasing time order with
// zero drops; with lateness above slack, drops are exactly the too-late
// arrivals and the output remains ordered.
class ReorderProperty
    : public ::testing::TestWithParam<std::tuple<EventTime, EventTime, EventTime>> {};

TEST_P(ReorderProperty, OrderedLosslessWithinSlack) {
  const auto [slack, slot, max_delay] = GetParam();
  Rng rng(slack * 31 + slot * 7 + max_delay);
  ReorderBuffer buf({.slack_ns = slack, .slot_width_ns = slot});

  // Event times advance; arrival order = event order shuffled by delay.
  constexpr int kN = 5000;
  std::vector<std::pair<EventTime, EventTime>> arrivals;  // (arrival, event).
  EventTime t = 0;
  for (int i = 0; i < kN; ++i) {
    t += static_cast<EventTime>(rng.NextBelow(50)) + 1;
    const EventTime delay = static_cast<EventTime>(rng.NextBelow(
        static_cast<uint64_t>(max_delay) + 1));
    arrivals.emplace_back(t + delay, t);
  }
  std::sort(arrivals.begin(), arrivals.end());

  std::vector<LogRecord> out;
  for (const auto& [arrival, event] : arrivals) {
    buf.Push(Rec(event), &out);
  }
  buf.FlushAll(&out);

  // Output ordered.
  for (size_t i = 1; i < out.size(); ++i) {
    ASSERT_LE(out[i - 1].time, out[i].time) << "at " << i;
  }
  // Conservation.
  EXPECT_EQ(buf.stats().emitted + 0u, out.size());
  EXPECT_EQ(buf.stats().accepted + buf.stats().discarded_late,
            static_cast<uint64_t>(kN));
  if (max_delay <= slack) {
    // Bounded lateness within slack: lossless.
    EXPECT_EQ(buf.stats().discarded_late, 0u);
    EXPECT_EQ(out.size(), static_cast<size_t>(kN));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SlackSweep, ReorderProperty,
    ::testing::Values(
        std::make_tuple<EventTime, EventTime, EventTime>(1000, 10, 0),
        std::make_tuple<EventTime, EventTime, EventTime>(1000, 10, 500),
        std::make_tuple<EventTime, EventTime, EventTime>(1000, 10, 1000),
        std::make_tuple<EventTime, EventTime, EventTime>(1000, 100, 900),
        std::make_tuple<EventTime, EventTime, EventTime>(1000, 1000, 900),
        std::make_tuple<EventTime, EventTime, EventTime>(500, 7, 2000),
        std::make_tuple<EventTime, EventTime, EventTime>(100, 10, 5000),
        std::make_tuple<EventTime, EventTime, EventTime>(10000, 100, 9999)));

// Memory grows with slack: a larger window buffers proportionally more input
// (the Figure 8 relationship) for delay-free, steady-rate input.
TEST(ReorderBuffer, BufferedBytesGrowWithSlack) {
  size_t prev_peak = 0;
  for (EventTime slack : {1000, 2000, 4000}) {
    ReorderBuffer buf(
        {.slack_ns = slack, .slot_width_ns = 10});
    std::vector<LogRecord> out;
    size_t peak = 0;
    for (EventTime t = 0; t < 20000; t += 2) {
      buf.Push(Rec(t), &out);
      peak = std::max(peak, buf.buffered_bytes());
      out.clear();
    }
    EXPECT_GT(peak, prev_peak);
    prev_peak = peak;
  }
}

}  // namespace
}  // namespace ts
