// End-to-end smoke tests for the ts_timely engine: input -> exchange ->
// stateful count with notifications -> sink, across 1..4 workers.
#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/siphash.h"
#include "src/timely/timely.h"

namespace ts {
namespace {

// Counts words per epoch with an exchange by word hash; emits (word, count)
// pairs on epoch-completion notifications. Verifies:
//  * records are routed to a single worker per key,
//  * notifications fire exactly once per (worker, requested epoch),
//  * results are complete and correct regardless of worker count.
TEST(TimelySmoke, DistributedWordCount) {
  for (size_t workers : {1u, 2u, 4u}) {
    std::mutex mu;
    std::map<std::string, int> global_counts;

    Computation::Options options;
    options.workers = workers;
    RunResult result = Computation::Run(options, [&](Scope& scope) {
      auto [input, stream] = scope.NewInput<std::string>("words");

      using State = std::map<std::string, int>;
      auto state = std::make_shared<std::map<Epoch, State>>();

      auto counted = scope.Unary<std::string, std::pair<std::string, int>>(
          stream,
          Partition<std::string>::ByKey(
              [](const std::string& w) { return SipHash24(w); }),
          "count",
          [state](Epoch e, std::vector<std::string>& words,
                  OutputSession<std::pair<std::string, int>>&,
                  NotificatorHandle& notificator) {
            for (auto& w : words) {
              ++(*state)[e][w];
            }
            notificator.NotifyAt(e);
          },
          [state](Epoch e, OutputSession<std::pair<std::string, int>>& out,
                  NotificatorHandle&) {
            auto it = state->find(e);
            if (it == state->end()) {
              return;
            }
            for (auto& [word, count] : it->second) {
              out.Give(e, {word, count});
            }
            state->erase(it);
          });

      scope.Sink<std::pair<std::string, int>>(
          counted, "collect",
          [&mu, &global_counts](Epoch, std::vector<std::pair<std::string, int>>& data) {
            std::lock_guard<std::mutex> lock(mu);
            for (auto& [word, count] : data) {
              global_counts[word] += count;
            }
          });

      // Worker w contributes words at epochs 0..2.
      auto session = std::make_shared<InputSession<std::string>>(input);
      const size_t w = scope.worker_index();
      scope.AddDriver([session, w, fed = size_t{0}]() mutable -> DriverStatus {
        if (fed == 3) {
          session->Close();
          return DriverStatus::kFinished;
        }
        session->Give("alpha");
        session->Give("w" + std::to_string(w));
        session->Give("alpha");
        ++fed;
        session->AdvanceTo(fed);
        return DriverStatus::kWorked;
      });
    });

    ASSERT_EQ(result.workers.size(), workers);
    // Every worker gave "alpha" twice per epoch for 3 epochs.
    EXPECT_EQ(global_counts["alpha"], static_cast<int>(6 * workers))
        << "workers=" << workers;
    for (size_t w = 0; w < workers; ++w) {
      EXPECT_EQ(global_counts["w" + std::to_string(w)], 3) << "workers=" << workers;
    }
    if (workers > 1) {
      EXPECT_GT(result.records_exchanged, 0u);
    }
  }
}

// Epoch completion must respect cross-worker in-flight data: a probe after an
// exchange may not report an epoch complete until all workers' contributions
// for it are drained.
TEST(TimelySmoke, ProbeObservesPunctuationsInOrder) {
  constexpr size_t kWorkers = 3;
  std::mutex mu;
  std::vector<std::vector<Epoch>> completions(kWorkers);

  Computation::Options options;
  options.workers = kWorkers;
  Computation::Run(options, [&](Scope& scope) {
    auto [input, stream] = scope.NewInput<uint64_t>("numbers");
    auto exchanged = scope.Unary<uint64_t, uint64_t>(
        stream, Partition<uint64_t>::ByKey([](const uint64_t& v) { return v; }),
        "shuffle",
        [](Epoch e, std::vector<uint64_t>& data, OutputSession<uint64_t>& out,
           NotificatorHandle&) { out.GiveVec(e, std::move(data)); },
        [](Epoch, OutputSession<uint64_t>&, NotificatorHandle&) {});
    auto probe = std::make_shared<ProbeHandle>(scope.Probe(exchanged, "probe"));

    auto session = std::make_shared<InputSession<uint64_t>>(input);
    scope.AddDriver([session, fed = Epoch{0}]() mutable -> DriverStatus {
      if (fed == 5) {
        session->Close();
        return DriverStatus::kFinished;
      }
      for (uint64_t v = 0; v < 64; ++v) {
        session->Give(v);
      }
      ++fed;
      session->AdvanceTo(fed);
      return DriverStatus::kWorked;
    });

    const size_t w = scope.worker_index();
    auto seen = std::make_shared<Epoch>(0);
    scope.AddStepCallback([probe, seen, w, &mu, &completions]() {
      while (probe->Beyond(*seen)) {
        std::lock_guard<std::mutex> lock(mu);
        completions[w].push_back(*seen);
        ++(*seen);
        if (*seen > 4) {
          break;
        }
      }
    });
  });

  for (size_t w = 0; w < kWorkers; ++w) {
    // Each worker observed epochs 0..4 complete, in order.
    ASSERT_GE(completions[w].size(), 5u) << "worker " << w;
    for (Epoch e = 0; e < 5; ++e) {
      EXPECT_EQ(completions[w][e], e) << "worker " << w;
    }
  }
}

// A pipeline-only graph (no exchange) on one worker preserves record order
// within an epoch and delivers epochs in order to the sink.
TEST(TimelySmoke, PipelineOrdering) {
  std::vector<std::pair<Epoch, int>> seen;
  Computation::Options options;
  options.workers = 1;
  Computation::Run(options, [&](Scope& scope) {
    auto [input, stream] = scope.NewInput<int>("ints");
    auto doubled =
        scope.Map<int, int>(stream, "double", [](int v) { return v * 2; });
    auto odd_removed = scope.Filter<int>(
        doubled, "keep_mod4", [](const int& v) { return v % 4 == 0; });
    scope.Sink<int>(odd_removed, "collect", [&](Epoch e, std::vector<int>& data) {
      for (int v : data) {
        seen.emplace_back(e, v);
      }
    });

    auto session = std::make_shared<InputSession<int>>(input);
    scope.AddDriver([session, fed = Epoch{0}]() mutable -> DriverStatus {
      if (fed == 3) {
        session->Close();
        return DriverStatus::kFinished;
      }
      for (int v = 0; v < 10; ++v) {
        session->Give(v);
      }
      ++fed;
      session->AdvanceTo(fed);
      return DriverStatus::kWorked;
    });
  });

  // 5 records per epoch (v=0,2,4,6,8 -> doubled 0,4,8,12,16).
  ASSERT_EQ(seen.size(), 15u);
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].first, i / 5);
    EXPECT_EQ(seen[i].second, static_cast<int>(i % 5) * 4);
  }
}

}  // namespace
}  // namespace ts
