// Tests for the binary (two-input) operator and the distributed per-epoch
// histogram operator.
#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "src/analytics/collectors.h"
#include "src/analytics/histogram_op.h"
#include "src/common/siphash.h"
#include "src/timely/binary_operator.h"
#include "src/timely/timely.h"

namespace ts {
namespace {

// Keyed enrichment join: a metadata stream (key -> label) and a data stream
// (key, value); output labels each value. Both inputs exchanged by key, so
// matching records meet on one worker; values are buffered per epoch and
// joined on notification so results do not depend on arrival interleaving.
struct Meta {
  uint64_t key;
  std::string label;
};
struct Value {
  uint64_t key;
  int value;
};
struct Labeled {
  std::string label;
  int value;
};

TEST(BinaryOperator, KeyedEnrichmentJoinAcrossWorkers) {
  for (size_t workers : {1u, 3u}) {
    auto collector = std::make_shared<ConcurrentCollector<Labeled>>();
    Computation::Options options;
    options.workers = workers;
    Computation::Run(options, [&](Scope& scope) {
      auto [meta_in, meta_stream] = scope.NewInput<Meta>("meta");
      auto [value_in, value_stream] = scope.NewInput<Value>("values");

      struct JoinState {
        std::unordered_map<uint64_t, std::string> labels;
        std::map<Epoch, std::vector<Value>> pending;
      };
      auto state = std::make_shared<JoinState>();
      auto labeled = Binary<Meta, Value, Labeled>(
          scope, meta_stream,
          Partition<Meta>::ByKey([](const Meta& m) { return SipHash24(m.key); }),
          value_stream,
          Partition<Value>::ByKey([](const Value& v) { return SipHash24(v.key); }),
          "join",
          [state](Epoch, std::vector<Meta>& metas, OutputSession<Labeled>&,
                  NotificatorHandle&) {
            for (auto& m : metas) {
              state->labels[m.key] = m.label;
            }
          },
          [state](Epoch e, std::vector<Value>& values, OutputSession<Labeled>&,
                  NotificatorHandle& notificator) {
            auto& pending = state->pending[e];
            for (auto& v : values) {
              pending.push_back(v);
            }
            notificator.NotifyAt(e);
          },
          [state](Epoch e, OutputSession<Labeled>& out, NotificatorHandle&) {
            auto it = state->pending.find(e);
            if (it == state->pending.end()) {
              return;
            }
            for (const auto& v : it->second) {
              auto label = state->labels.find(v.key);
              out.Give(e, Labeled{label == state->labels.end() ? "?" : label->second,
                                  v.value});
            }
            state->pending.erase(it);
          });
      CollectInto<Labeled>(scope, labeled, collector, "collect");

      auto meta_session = std::make_shared<InputSession<Meta>>(meta_in);
      auto value_session = std::make_shared<InputSession<Value>>(value_in);
      const size_t w = scope.worker_index();
      auto step = std::make_shared<int>(0);
      scope.AddDriver([meta_session, value_session, w, step]() -> DriverStatus {
        switch ((*step)++) {
          case 0:
            if (w == 0) {
              // Metadata at epoch 0; values follow at epoch 1.
              for (uint64_t k = 0; k < 8; ++k) {
                meta_session->Give(Meta{k, "svc" + std::to_string(k)});
              }
            }
            meta_session->AdvanceTo(1);
            value_session->AdvanceTo(1);
            return DriverStatus::kWorked;
          case 1:
            if (w == 0) {
              for (uint64_t k = 0; k < 8; ++k) {
                value_session->Give(Value{k, static_cast<int>(k * 10)});
              }
            }
            meta_session->Close();
            value_session->Close();
            return DriverStatus::kFinished;
        }
        return DriverStatus::kFinished;
      });
    });

    auto& items = collector->items();
    ASSERT_EQ(items.size(), 8u) << "workers=" << workers;
    std::map<std::string, int> by_label;
    for (const auto& l : items) {
      by_label[l.label] = l.value;
    }
    for (uint64_t k = 0; k < 8; ++k) {
      EXPECT_EQ(by_label["svc" + std::to_string(k)], static_cast<int>(k * 10));
    }
  }
}

TEST(HistogramOp, MergesPartialsAcrossWorkersExactly) {
  for (size_t workers : {1u, 4u}) {
    auto collector = std::make_shared<ConcurrentCollector<EpochHistogram>>();
    Computation::Options options;
    options.workers = workers;
    Computation::Run(options, [&](Scope& scope) {
      auto [input, stream] = scope.NewInput<double>("values");
      auto histograms = HistogramPerEpoch<double>(
          scope, stream, [](const double& v) { return v; }, "hist");
      CollectInto<EpochHistogram>(scope, histograms, collector, "collect");

      auto session = std::make_shared<InputSession<double>>(input);
      const size_t w = scope.worker_index();
      auto fed = std::make_shared<Epoch>(0);
      scope.AddDriver([session, fed, w]() -> DriverStatus {
        if (*fed == 2) {
          session->Close();
          return DriverStatus::kFinished;
        }
        // Every worker contributes the same values: 1, 2, 4, 8 -> buckets
        // 0, 1, 2, 3 with one count each per worker.
        for (double v : {1.0, 2.0, 4.0, 8.0}) {
          session->Give(v + static_cast<double>(*fed == 1 ? 8 : 0) * v);
        }
        session->AdvanceTo(++*fed);
        return DriverStatus::kWorked;
      });
    });

    auto& results = collector->items();
    ASSERT_EQ(results.size(), 2u) << "workers=" << workers;
    std::map<Epoch, EpochHistogram> by_epoch;
    for (auto& h : results) {
      by_epoch[h.epoch] = h;
    }
    // Epoch 0: values {1,2,4,8} per worker.
    const auto& e0 = by_epoch.at(0);
    EXPECT_EQ(e0.total, 4 * workers);
    for (int b : {0, 1, 2, 3}) {
      EXPECT_EQ(e0.buckets.at(b), workers) << "bucket " << b;
    }
    // Epoch 1: values x9 -> buckets 3, 4, 5, 6.
    const auto& e1 = by_epoch.at(1);
    EXPECT_EQ(e1.total, 4 * workers);
    EXPECT_EQ(e1.buckets.at(3), workers);  // 9 -> [8,16).
    EXPECT_EQ(e1.buckets.at(6), workers);  // 72 -> [64,128).
    // CDF reaches 1 and is monotone.
    auto cdf = e1.Cdf();
    ASSERT_FALSE(cdf.empty());
    EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
    for (size_t i = 1; i < cdf.size(); ++i) {
      EXPECT_GE(cdf[i].second, cdf[i - 1].second);
    }
  }
}

TEST(HistogramOp, EmptyEpochsProduceNoHistogram) {
  auto collector = std::make_shared<ConcurrentCollector<EpochHistogram>>();
  Computation::Options options;
  options.workers = 1;
  Computation::Run(options, [&](Scope& scope) {
    auto [input, stream] = scope.NewInput<double>("values");
    auto histograms = HistogramPerEpoch<double>(
        scope, stream, [](const double& v) { return v; }, "hist");
    CollectInto<EpochHistogram>(scope, histograms, collector, "collect");
    auto session = std::make_shared<InputSession<double>>(input);
    auto step = std::make_shared<int>(0);
    scope.AddDriver([session, step]() -> DriverStatus {
      if ((*step)++ == 0) {
        session->Give(5.0);
        session->AdvanceTo(10);  // Epochs 1..9 are empty.
        return DriverStatus::kWorked;
      }
      session->Give(7.0);
      session->Close();
      return DriverStatus::kFinished;
    });
  });
  ASSERT_EQ(collector->items().size(), 2u);
  EXPECT_EQ(collector->items()[0].epoch, 0u);
  EXPECT_EQ(collector->items()[1].epoch, 10u);
}

}  // namespace
}  // namespace ts
