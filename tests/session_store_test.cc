// Tests for the bounded session store behind the query interface (Figure 2).
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/analytics/session_store.h"

namespace ts {
namespace {

Session MakeSession(const std::string& id, EventTime start_ms, EventTime end_ms,
                    std::vector<uint32_t> services, uint32_t fragment = 0) {
  Session s;
  s.id = id;
  s.fragment_index = fragment;
  EventTime t = start_ms * kNanosPerMilli;
  const EventTime step =
      services.empty() ? 0
                       : (end_ms - start_ms) * kNanosPerMilli /
                             static_cast<EventTime>(services.size() + 1);
  for (uint32_t svc : services) {
    LogRecord r;
    r.time = t;
    r.session_id = id;
    r.txn_id = *TxnId::Parse("1");
    r.service = svc;
    s.records.push_back(std::move(r));
    t += step;
  }
  // Ensure the extent reaches end_ms.
  if (!s.records.empty()) {
    s.records.back().time = end_ms * kNanosPerMilli;
  }
  return s;
}

TEST(SessionStore, InsertAndGetById) {
  SessionStore store;
  store.Insert(MakeSession("A", 0, 10, {1, 2}));
  store.Insert(MakeSession("B", 5, 20, {2}));
  auto a = store.GetById("A");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->records.size(), 2u);
  EXPECT_FALSE(store.GetById("C").has_value());
  EXPECT_FALSE(store.GetById("A", /*fragment=*/1).has_value());
  EXPECT_EQ(store.stats().sessions, 2u);
  EXPECT_EQ(store.stats().inserted, 2u);
}

TEST(SessionStore, FragmentsStoredSeparatelyAndListed) {
  SessionStore store;
  store.Insert(MakeSession("A", 0, 10, {1}, 0));
  store.Insert(MakeSession("A", 100, 110, {1}, 1));
  auto fragments = store.GetAllFragments("A");
  ASSERT_EQ(fragments.size(), 2u);
  EXPECT_EQ(fragments[0].fragment_index, 0u);
  EXPECT_EQ(fragments[1].fragment_index, 1u);
  EXPECT_TRUE(store.GetById("A", 1).has_value());
}

TEST(SessionStore, QueryByServiceNewestFirstWithLimit) {
  SessionStore store;
  store.Insert(MakeSession("A", 0, 10, {7}));
  store.Insert(MakeSession("B", 10, 20, {7, 8}));
  store.Insert(MakeSession("C", 20, 30, {8}));
  auto with7 = store.QueryByService(7, 10);
  ASSERT_EQ(with7.size(), 2u);
  EXPECT_EQ(with7[0].id, "B");  // Newest first.
  EXPECT_EQ(with7[1].id, "A");
  EXPECT_EQ(store.QueryByService(7, 1).size(), 1u);
  EXPECT_TRUE(store.QueryByService(99, 10).empty());
}

TEST(SessionStore, QueryByTimeRangeIntersectsExtents) {
  SessionStore store;
  store.Insert(MakeSession("A", 0, 10, {1}));
  store.Insert(MakeSession("B", 5, 25, {1}));
  store.Insert(MakeSession("C", 30, 40, {1}));
  auto hits = store.QueryByTimeRange(8 * kNanosPerMilli, 28 * kNanosPerMilli, 10);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].id, "A");
  EXPECT_EQ(hits[1].id, "B");
  // A range after everything.
  EXPECT_TRUE(store.QueryByTimeRange(100 * kNanosPerMilli,
                                     200 * kNanosPerMilli, 10)
                  .empty());
}

TEST(SessionStore, EvictsOldestWhenOverBudget) {
  SessionStore::Options options;
  options.max_bytes = 4096;
  SessionStore store(options);
  for (int i = 0; i < 100; ++i) {
    store.Insert(MakeSession("S" + std::to_string(i), i * 10, i * 10 + 5, {1, 2, 3}));
  }
  const auto stats = store.stats();
  EXPECT_GT(stats.evicted, 0u);
  EXPECT_LE(stats.bytes, 4096u + 2048u);  // Budget plus one entry of slack.
  // Oldest evicted, newest retained.
  EXPECT_FALSE(store.GetById("S0").has_value());
  EXPECT_TRUE(store.GetById("S99").has_value());
  // Indexes stay consistent after eviction.
  auto by_service = store.QueryByService(2, 1000);
  EXPECT_EQ(by_service.size(), stats.sessions);
}

TEST(SessionStore, TimeRangeOrderedByStartWithIntersectSemantics) {
  SessionStore store;
  // Inserted out of start-time order on purpose: results must come back
  // ordered by start time, not insertion order.
  store.Insert(MakeSession("C", 30, 40, {1}));
  store.Insert(MakeSession("A", 0, 10, {1}));
  store.Insert(MakeSession("B", 5, 25, {1}));

  // [lo, hi) intersect semantics against the closed extent [min, max]:
  //   * a session starting exactly at hi is excluded;
  //   * a session ending exactly at lo is included.
  auto hits = store.QueryByTimeRange(10 * kNanosPerMilli, 30 * kNanosPerMilli,
                                     10);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].id, "A");  // Ends exactly at lo: included, and first.
  EXPECT_EQ(hits[1].id, "B");
  // C starts exactly at hi: excluded.

  // limit cuts the scan short but preserves start-time order.
  auto limited =
      store.QueryByTimeRange(0, 100 * kNanosPerMilli, /*limit=*/2);
  ASSERT_EQ(limited.size(), 2u);
  EXPECT_EQ(limited[0].id, "A");
  EXPECT_EQ(limited[1].id, "B");
  EXPECT_TRUE(store.QueryByTimeRange(0, 100 * kNanosPerMilli, 0).empty());
}

TEST(SessionStore, TopServicesRankedWithTieBreakAndEviction) {
  SessionStore store;
  store.Insert(MakeSession("A", 0, 10, {1, 2}));
  store.Insert(MakeSession("B", 10, 20, {2, 3}));
  store.Insert(MakeSession("C", 20, 30, {2, 3}));
  auto top = store.TopServices(10);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], (std::pair<uint32_t, size_t>{2, 3}));
  EXPECT_EQ(top[1], (std::pair<uint32_t, size_t>{3, 2}));  // Tie with 1:
  EXPECT_EQ(top[2], (std::pair<uint32_t, size_t>{1, 1}));  // lower id first.
  EXPECT_EQ(store.TopServices(1).size(), 1u);
  EXPECT_TRUE(SessionStore().TopServices(5).empty());
}

TEST(SessionStore, EvictionUnindexesExactServiceSet) {
  SessionStore::Options options;
  options.max_bytes = 2048;
  SessionStore store(options);
  // The first session is the only one touching service 999; eviction must
  // remove it from that index (and leave the shared service 1 consistent).
  store.Insert(MakeSession("OLD", 0, 5, {1, 999}));
  for (int i = 0; i < 50; ++i) {
    store.Insert(MakeSession("N" + std::to_string(i), i * 10, i * 10 + 5, {1}));
  }
  ASSERT_GT(store.stats().evicted, 0u);
  ASSERT_FALSE(store.GetById("OLD").has_value());
  EXPECT_TRUE(store.QueryByService(999, 10).empty());
  EXPECT_EQ(store.QueryByService(1, 1000).size(), store.stats().sessions);
  // Repeated insert of a duplicate service in one session stays consistent.
  store.Insert(MakeSession("DUP", 600, 610, {4, 4, 4}));
  EXPECT_EQ(store.QueryByService(4, 10).size(), 1u);
}

TEST(SessionStore, InsertObserversFireUntilRemoved) {
  SessionStore store;
  std::vector<std::string> seen_a;
  std::vector<std::string> seen_b;
  const uint64_t a =
      store.AddInsertObserver([&](const Session& s) { seen_a.push_back(s.id); });
  const uint64_t b =
      store.AddInsertObserver([&](const Session& s) { seen_b.push_back(s.id); });
  store.Insert(MakeSession("X", 0, 1, {1}));
  store.RemoveInsertObserver(a);
  store.Insert(MakeSession("Y", 1, 2, {1}));
  store.RemoveInsertObserver(b);
  store.Insert(MakeSession("Z", 2, 3, {1}));
  EXPECT_EQ(seen_a, (std::vector<std::string>{"X"}));
  EXPECT_EQ(seen_b, (std::vector<std::string>{"X", "Y"}));
}

// Concurrent insert/evict/query stress: run under TSan/ASan, this pins the
// absence of dangling service-index reads while eviction churns the store.
TEST(SessionStore, ConcurrentInsertEvictQueryStress) {
  SessionStore::Options options;
  options.max_bytes = 64 << 10;  // Small: constant eviction under load.
  SessionStore store(options);
  std::atomic<uint64_t> observed{0};
  store.AddInsertObserver([&](const Session&) {
    observed.fetch_add(1, std::memory_order_relaxed);
  });

  constexpr int kWriters = 3;
  constexpr int kReaders = 3;
  constexpr int kPerWriter = 400;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&store, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        store.Insert(MakeSession("W" + std::to_string(w) + "-" +
                                     std::to_string(i),
                                 i, i + 2,
                                 {static_cast<uint32_t>(i % 7),
                                  static_cast<uint32_t>(w)}));
      }
    });
  }
  std::atomic<bool> done{false};
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&store, &done, r] {
      size_t spins = 0;
      while (!done.load(std::memory_order_acquire) || spins < 100) {
        ++spins;
        for (const auto& s :
             store.QueryByService(static_cast<uint32_t>(spins % 7), 8)) {
          // Touch the payload: a dangling entry blows up under sanitizers.
          ASSERT_FALSE(s.id.empty());
        }
        (void)store.QueryByTimeRange(0, 500 * kNanosPerMilli, 8);
        (void)store.TopServices(4);
        (void)store.GetAllFragments("W" + std::to_string(r) + "-5");
        (void)store.stats();
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) {
    threads[static_cast<size_t>(w)].join();
  }
  done.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); ++t) {
    threads[t].join();
  }
  const auto stats = store.stats();
  EXPECT_EQ(stats.inserted, static_cast<uint64_t>(kWriters * kPerWriter));
  EXPECT_EQ(observed.load(), stats.inserted);
  EXPECT_GT(stats.evicted, 0u);
  EXPECT_EQ(stats.sessions, stats.inserted - stats.evicted);
  // Post-churn index consistency.
  size_t by_service_total = 0;
  for (uint32_t svc = 0; svc < 7; ++svc) {
    by_service_total += store.QueryByService(svc, 10'000).size();
  }
  EXPECT_GE(by_service_total, stats.sessions);  // Sessions touch >= 1 svc.
}

TEST(SessionStore, ConcurrentInsertAndQuery) {
  SessionStore store;
  std::thread writer([&] {
    for (int i = 0; i < 500; ++i) {
      store.Insert(MakeSession("W" + std::to_string(i), i, i + 1, {1}));
    }
  });
  std::thread reader([&] {
    for (int i = 0; i < 500; ++i) {
      (void)store.QueryByService(1, 5);
      (void)store.QueryByTimeRange(0, 1'000'000'000, 5);
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(store.stats().inserted, 500u);
}

}  // namespace
}  // namespace ts
