// Tests for the bounded session store behind the query interface (Figure 2).
#include <thread>

#include <gtest/gtest.h>

#include "src/analytics/session_store.h"

namespace ts {
namespace {

Session MakeSession(const std::string& id, EventTime start_ms, EventTime end_ms,
                    std::vector<uint32_t> services, uint32_t fragment = 0) {
  Session s;
  s.id = id;
  s.fragment_index = fragment;
  EventTime t = start_ms * kNanosPerMilli;
  const EventTime step =
      services.empty() ? 0
                       : (end_ms - start_ms) * kNanosPerMilli /
                             static_cast<EventTime>(services.size() + 1);
  for (uint32_t svc : services) {
    LogRecord r;
    r.time = t;
    r.session_id = id;
    r.txn_id = *TxnId::Parse("1");
    r.service = svc;
    s.records.push_back(std::move(r));
    t += step;
  }
  // Ensure the extent reaches end_ms.
  if (!s.records.empty()) {
    s.records.back().time = end_ms * kNanosPerMilli;
  }
  return s;
}

TEST(SessionStore, InsertAndGetById) {
  SessionStore store;
  store.Insert(MakeSession("A", 0, 10, {1, 2}));
  store.Insert(MakeSession("B", 5, 20, {2}));
  auto a = store.GetById("A");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->records.size(), 2u);
  EXPECT_FALSE(store.GetById("C").has_value());
  EXPECT_FALSE(store.GetById("A", /*fragment=*/1).has_value());
  EXPECT_EQ(store.stats().sessions, 2u);
  EXPECT_EQ(store.stats().inserted, 2u);
}

TEST(SessionStore, FragmentsStoredSeparatelyAndListed) {
  SessionStore store;
  store.Insert(MakeSession("A", 0, 10, {1}, 0));
  store.Insert(MakeSession("A", 100, 110, {1}, 1));
  auto fragments = store.GetAllFragments("A");
  ASSERT_EQ(fragments.size(), 2u);
  EXPECT_EQ(fragments[0].fragment_index, 0u);
  EXPECT_EQ(fragments[1].fragment_index, 1u);
  EXPECT_TRUE(store.GetById("A", 1).has_value());
}

TEST(SessionStore, QueryByServiceNewestFirstWithLimit) {
  SessionStore store;
  store.Insert(MakeSession("A", 0, 10, {7}));
  store.Insert(MakeSession("B", 10, 20, {7, 8}));
  store.Insert(MakeSession("C", 20, 30, {8}));
  auto with7 = store.QueryByService(7, 10);
  ASSERT_EQ(with7.size(), 2u);
  EXPECT_EQ(with7[0].id, "B");  // Newest first.
  EXPECT_EQ(with7[1].id, "A");
  EXPECT_EQ(store.QueryByService(7, 1).size(), 1u);
  EXPECT_TRUE(store.QueryByService(99, 10).empty());
}

TEST(SessionStore, QueryByTimeRangeIntersectsExtents) {
  SessionStore store;
  store.Insert(MakeSession("A", 0, 10, {1}));
  store.Insert(MakeSession("B", 5, 25, {1}));
  store.Insert(MakeSession("C", 30, 40, {1}));
  auto hits = store.QueryByTimeRange(8 * kNanosPerMilli, 28 * kNanosPerMilli, 10);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].id, "A");
  EXPECT_EQ(hits[1].id, "B");
  // A range after everything.
  EXPECT_TRUE(store.QueryByTimeRange(100 * kNanosPerMilli,
                                     200 * kNanosPerMilli, 10)
                  .empty());
}

TEST(SessionStore, EvictsOldestWhenOverBudget) {
  SessionStore::Options options;
  options.max_bytes = 4096;
  SessionStore store(options);
  for (int i = 0; i < 100; ++i) {
    store.Insert(MakeSession("S" + std::to_string(i), i * 10, i * 10 + 5, {1, 2, 3}));
  }
  const auto stats = store.stats();
  EXPECT_GT(stats.evicted, 0u);
  EXPECT_LE(stats.bytes, 4096u + 2048u);  // Budget plus one entry of slack.
  // Oldest evicted, newest retained.
  EXPECT_FALSE(store.GetById("S0").has_value());
  EXPECT_TRUE(store.GetById("S99").has_value());
  // Indexes stay consistent after eviction.
  auto by_service = store.QueryByService(2, 1000);
  EXPECT_EQ(by_service.size(), stats.sessions);
}

TEST(SessionStore, ConcurrentInsertAndQuery) {
  SessionStore store;
  std::thread writer([&] {
    for (int i = 0; i < 500; ++i) {
      store.Insert(MakeSession("W" + std::to_string(i), i, i + 1, {1}));
    }
  });
  std::thread reader([&] {
    for (int i = 0; i < 500; ++i) {
      (void)store.QueryByService(1, 5);
      (void)store.QueryByTimeRange(0, 1'000'000'000, 5);
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(store.stats().inserted, 500u);
}

}  // namespace
}  // namespace ts
