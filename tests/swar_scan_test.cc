// Property suite for the SWAR zero-copy ingest scan (docs/INGEST.md).
//
// Three equivalence contracts, each enforced byte-for-byte against a scalar
// reference over adversarial corpora:
//
//   1. FindByte / ScanSeparators == their byte-at-a-time references, on
//      every substring (all unaligned starts, all lengths crossing word
//      boundaries) of hostile buffers — NULs, 0x7f/0x80 lanes adjacent to
//      the needle value (the bytes where Mycroft borrow propagation flags
//      spurious lanes), runs of separators, empty inputs.
//   2. MaterializeRecord(ScanRecord(line)) == ParseWireFormat(line): accepts
//      exactly the same lines and produces identical LogRecords — on valid
//      wire lines, every prefix truncation of them, and a malformed corpus.
//   3. LineFramer::FeedViews == LineFramer::Feed at EVERY split point of a
//      wire byte stream (the LineFramerProperty pattern), including CRLF,
//      oversized lines, and mid-line connection resets; and
//      LivePipeline::FeedBlock == FeedLine on the same stream (identical
//      session digests at 1/2/4 workers).
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/arena.h"
#include "src/core/live_pipeline.h"
#include "src/log/record_batch.h"
#include "src/log/record_view.h"
#include "src/log/swar_scan.h"
#include "src/log/wire_format.h"
#include "src/net/frame_reader.h"
#include "src/workload/generator.h"

namespace ts {
namespace {

// ---------------------------------------------------------------------------
// Corpora.

// Bytes chosen to stress the Mycroft trick around needle '|' (0x7c) and
// '\n' (0x0a): values one off from the needle, 0x00/0x7f/0x80/0xff lanes,
// and long runs of the needle itself.
std::vector<std::string> HostileBuffers() {
  std::vector<std::string> corpus = {
      "",
      "|",
      "||||||||||||||||||",
      "a|b|c|d|e|f|g",
      std::string(1, '\0'),
      std::string(9, '\0') + "|" + std::string(9, '\0'),
      "abc\x7b\x7c\x7d\x7e\x7f",          // Bytes adjacent to '|'.
      "a|}xxxxx",                          // Borrow-propagation false lane.
      "\x80\xff\x80\xff|\x80\xff",
      "seven77|eight888|nine9999|",        // Matches at lanes 7, 0 of words.
      std::string(64, 'x') + "|" + std::string(64, 'y'),
      "x|\ny|\r\nz",
  };
  // One long mixed buffer exercising every lane position.
  std::string mixed;
  for (int i = 0; i < 257; ++i) {
    mixed.push_back(static_cast<char>(i));
  }
  corpus.push_back(mixed);
  return corpus;
}

std::vector<std::string> WireCorpus() {
  std::vector<std::string> lines;
  GeneratorConfig config;
  config.seed = 4242;
  config.duration_ns = 1 * kNanosPerSecond;
  config.target_records_per_sec = 500;
  TraceGenerator gen(config);
  Epoch epoch = 0;
  std::vector<LogRecord> records;
  while (gen.NextEpoch(&epoch, &records)) {
    for (const auto& r : records) {
      lines.push_back(ToWireFormat(r));
    }
  }
  return lines;
}

// Lines ParseWireFormat must reject (plus a few it must accept in edge
// shapes), used for accept/reject parity.
std::vector<std::string> MalformedCorpus() {
  return {
      "",
      "|",
      "||||||",
      "1|s|1-2|svc-1|h-1",                      // 4 seps: too few fields.
      "1|s|1-2|svc-1|h-1|",                     // 5 seps, empty kind.
      "1|s|1-2|svc-1|h-1|START",                // 5 seps, kind, no payload.
      "1|s|1-2|svc-1|h-1|START|",               // 6 seps, empty payload.
      "1|s|1-2|svc-1|h-1|START|p",              // Valid.
      "1|s|1-2|svc-1|h-1|start|p",              // Lowercase kind.
      "1|s|1-2|svc-1|h-1|STARTX|p",             // Kind with trailing junk.
      "x|s|1-2|svc-1|h-1|START|p",              // Non-numeric time.
      "1x|s|1-2|svc-1|h-1|START|p",             // Time with trailing junk.
      "-5|s|1-2|svc-1|h-1|START|p",             // Negative time: accepted.
      "99999999999999999999|s|1-2|svc-1|h-1|START|p",  // Time overflow.
      "1||1-2|svc-1|h-1|START|p",               // Empty session id.
      "1|s||svc-1|h-1|START|p",                 // Empty txn id.
      "1|s|1-2-x|svc-1|h-1|START|p",            // Corrupt txn id.
      "1|s|1-2|h-1|svc-1|START|p",              // Swapped svc/host fields.
      "1|s|1-2|svc-|h-1|START|p",               // Prefix with no digits.
      "1|s|1-2|svc-1x|h-1|START|p",             // Service trailing junk.
      "1|s|1-2|svc-4294967296|h-1|START|p",     // Service u32 overflow.
      "1|s|1-2|svc-1|hh-1|START|p",             // Wrong host prefix.
      "1|s|1-2|svc-1|h-1|START|p|q|r",          // Pipes in payload: accepted.
      std::string("1|s\0s|1-2|svc-1|h-1|START|p", 27),  // NUL in session.
      std::string("1|s|1-2|svc-1\0|h-1|START|p", 26),   // NUL in service.
      "1|s|1-2|svc-00000001|h-1|START|p",       // >8-byte field, valid u32.
  };
}

// ---------------------------------------------------------------------------
// 1. Scanner vs scalar reference.

TEST(SwarScan, FindByteMatchesScalarOnAllSubstrings) {
  for (const std::string& buf : HostileBuffers()) {
    for (const char needle : {'|', '\n', '\0', 'x', '\x7f', '\x80'}) {
      for (size_t begin = 0; begin <= buf.size() && begin < 24; ++begin) {
        for (size_t len = 0; begin + len <= buf.size(); ++len) {
          const char* p = buf.data() + begin;
          ASSERT_EQ(FindByte(p, len, needle), FindByteScalar(p, len, needle))
              << "begin=" << begin << " len=" << len << " needle="
              << static_cast<int>(needle);
        }
      }
    }
  }
}

TEST(SwarScan, ScanSeparatorsMatchesScalarOnAllSubstrings) {
  for (const std::string& buf : HostileBuffers()) {
    for (size_t begin = 0; begin <= buf.size() && begin < 24; ++begin) {
      for (size_t len = 0; begin + len <= buf.size(); ++len) {
        const std::string_view view(buf.data() + begin, len);
        for (size_t max_seps = 1; max_seps <= RecordView::kMaxSeps;
             ++max_seps) {
          size_t got[RecordView::kMaxSeps];
          size_t want[RecordView::kMaxSeps];
          const size_t got_n = ScanSeparators(view, '|', got, max_seps);
          const size_t want_n =
              ScanSeparatorsScalar(view, '|', want, max_seps);
          ASSERT_EQ(got_n, want_n)
              << "begin=" << begin << " len=" << len << " max=" << max_seps;
          for (size_t i = 0; i < got_n; ++i) {
            ASSERT_EQ(got[i], want[i]) << "sep " << i;
          }
        }
      }
    }
  }
}

TEST(SwarScan, ScanRecordMatchesScalarOnWireCorpus) {
  for (const std::string& line : WireCorpus()) {
    const RecordView a = ScanRecord(line);
    const RecordView b = ScanRecordScalar(line);
    ASSERT_EQ(a.sep_count, b.sep_count) << line;
    for (size_t i = 0; i < a.sep_count; ++i) {
      ASSERT_EQ(a.sep[i], b.sep[i]) << line;
    }
  }
}

// Unaligned starts: the same bytes at every offset 1..7 within a page must
// scan identically (Load64 goes through memcpy; this is the regression guard
// for anyone "optimizing" it into an aligned load).
TEST(SwarScan, UnalignedStartsScanIdentically) {
  const std::string line = "599859123|XKSHSK|26-3-11|svc-204|h-17|ANNOT|q=1";
  std::vector<char> page(line.size() + 16);
  for (size_t offset = 0; offset < 8; ++offset) {
    std::memcpy(page.data() + offset, line.data(), line.size());
    const std::string_view shifted(page.data() + offset, line.size());
    const RecordView a = ScanRecord(shifted);
    const RecordView b = ScanRecordScalar(line);
    ASSERT_EQ(a.sep_count, b.sep_count) << "offset=" << offset;
    for (size_t i = 0; i < a.sep_count; ++i) {
      ASSERT_EQ(a.sep[i], b.sep[i]) << "offset=" << offset;
    }
  }
}

// ---------------------------------------------------------------------------
// 2. MaterializeRecord vs ParseWireFormat.

void ExpectParseParity(std::string_view line, InternerPair* interners) {
  const std::optional<LogRecord> want = ParseWireFormat(line);
  LogRecord got;
  const bool ok = MaterializeRecord(ScanRecord(line), interners, &got);
  ASSERT_EQ(ok, want.has_value())
      << "accept/reject divergence on: " << std::string(line);
  if (!ok) {
    return;
  }
  EXPECT_EQ(got.time, want->time);
  EXPECT_EQ(got.session_id, want->session_id);
  EXPECT_EQ(got.txn_id, want->txn_id);
  EXPECT_EQ(got.service, want->service);
  EXPECT_EQ(got.host, want->host);
  EXPECT_EQ(got.kind, want->kind);
  EXPECT_EQ(got.payload, want->payload);
}

TEST(RecordViewParity, WireCorpusAndEveryTruncation) {
  InternerPair interners;
  for (const std::string& line : WireCorpus()) {
    ExpectParseParity(line, &interners);
    ExpectParseParity(line, nullptr);  // Uncached path must agree too.
    // Every prefix of a valid line (most are malformed): accept/reject
    // parity across all truncation points.
    for (size_t len = 0; len < line.size(); ++len) {
      ExpectParseParity(std::string_view(line.data(), len), &interners);
    }
  }
}

TEST(RecordViewParity, MalformedCorpus) {
  InternerPair interners;
  for (const std::string& line : MalformedCorpus()) {
    ExpectParseParity(line, &interners);
    ExpectParseParity(line, nullptr);
  }
}

TEST(RecordViewParity, InternerIsPrefixIsolatedAndNulSafe) {
  FieldInterner svc("svc-");
  uint32_t id = 0;
  EXPECT_TRUE(svc.Lookup("svc-7", &id));
  EXPECT_EQ(id, 7u);
  EXPECT_EQ(svc.size(), 1u);
  // Cached entry must not leak across prefixes: an interner constructed for
  // "h-" rejects "svc-7" even though the svc interner has it cached.
  FieldInterner host("h-");
  EXPECT_FALSE(host.Lookup("svc-7", &id));
  // NUL-bearing fields (which would alias the zero padding in the packed
  // key) bypass the cache and fail like the scalar parser.
  EXPECT_FALSE(svc.Lookup(std::string_view("svc-7\0", 6), &id));
  EXPECT_TRUE(svc.Lookup("svc-7", &id));
  EXPECT_EQ(id, 7u);
  // >8-byte fields parse correctly without being cached.
  EXPECT_TRUE(svc.Lookup("svc-123456789", &id) ==
              wire::ParsePrefixedU32("svc-123456789", "svc-").has_value());
  svc.Clear();
  EXPECT_EQ(svc.size(), 0u);
  EXPECT_TRUE(svc.Lookup("svc-7", &id));  // Pure cache: same answer after.
  EXPECT_EQ(id, 7u);
}

TEST(RecordViewParity, RouteKeyMatchesParsedFields) {
  for (const std::string& line : WireCorpus()) {
    EventTime time = 0;
    std::string_view session;
    ASSERT_TRUE(ExtractRouteKey(ScanRecord(line), &time, &session));
    const auto parsed = ParseWireFormat(line);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(time, parsed->time);
    EXPECT_EQ(session, parsed->session_id);
  }
  EventTime time = 0;
  std::string_view session;
  EXPECT_FALSE(ExtractRouteKey(ScanRecord("x|s|rest"), &time, &session));
  EXPECT_FALSE(ExtractRouteKey(ScanRecord("1||rest"), &time, &session));
  EXPECT_FALSE(ExtractRouteKey(ScanRecord("|s|rest"), &time, &session));
  EXPECT_FALSE(ExtractRouteKey(ScanRecord("nodelims"), &time, &session));
}

// ---------------------------------------------------------------------------
// 3. Framer and pipeline equivalence.

// Both framer paths over the same byte stream split at `split`: identical
// lines, identical frame errors, identical pending bytes.
void ExpectFramerParity(const std::string& stream, size_t split,
                        size_t max_line_bytes) {
  LineFramer::Options options;
  options.max_line_bytes = max_line_bytes;
  LineFramer copying(options);
  LineFramer viewing(options);
  std::vector<std::string> copied;
  std::vector<std::string_view> viewed;
  Arena arena;

  // The view path requires data in arena-lifetime storage, as recv() into an
  // arena provides; stage both halves there.
  const std::string_view first =
      arena.Copy(std::string_view(stream).substr(0, split));
  const std::string_view second =
      arena.Copy(std::string_view(stream).substr(split));
  copying.Feed(stream.substr(0, split), &copied);
  copying.Feed(stream.substr(split), &copied);
  viewing.FeedViews(first, &arena, &viewed);
  viewing.FeedViews(second, &arena, &viewed);

  ASSERT_EQ(viewed.size(), copied.size()) << "split=" << split;
  for (size_t i = 0; i < copied.size(); ++i) {
    ASSERT_EQ(viewed[i], copied[i]) << "split=" << split << " line " << i;
  }
  EXPECT_EQ(viewing.frame_errors(), copying.frame_errors())
      << "split=" << split;
  EXPECT_EQ(viewing.pending_bytes(), copying.pending_bytes())
      << "split=" << split;
}

TEST(LineFramerProperty, FeedViewsMatchesFeedAtEverySplitPoint) {
  std::string stream;
  {
    auto corpus = WireCorpus();
    corpus.resize(4);
    for (const auto& line : corpus) {
      stream += line;
      stream += '\n';
    }
  }
  stream += "bare-no-newline-tail";
  for (size_t split = 0; split <= stream.size(); ++split) {
    ExpectFramerParity(stream, split, 1 << 20);
  }
}

TEST(LineFramerProperty, FeedViewsMatchesFeedOnHostileStream) {
  std::string stream;
  stream += "crlf-line\r\n";
  stream += "\n";             // Empty line.
  stream += "\r\n";           // CR-only line.
  stream += std::string(100, 'x') + "\n";  // Oversized (cap below).
  stream += "after-oversize\n";
  stream.append("nul\0nul\n", 8);
  stream += "tail-without-newline";
  for (size_t split = 0; split <= stream.size(); ++split) {
    ExpectFramerParity(stream, split, /*max_line_bytes=*/64);
  }
}

uint64_t DigestSessions(const std::vector<std::string>& lines,
                        bool use_blocks, size_t workers) {
  std::mutex mu;
  uint64_t digest = 0;
  uint64_t sessions = 0;
  LivePipelineOptions options;
  options.workers = workers;
  LivePipeline pipeline(options, [&](Session&& s) {
    thread_local std::string scratch;
    scratch.clear();
    // Cheap structural digest: id, fragment, record count, time span.
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    for (const char c : s.id) {
      mix(static_cast<unsigned char>(c));
    }
    mix(s.fragment_index);
    mix(s.records.size());
    for (const auto& r : s.records) {
      mix(static_cast<uint64_t>(r.time));
      mix(r.payload.size());
    }
    std::lock_guard<std::mutex> lock(mu);
    digest ^= h;
    ++sessions;
  });
  if (use_blocks) {
    auto arena = std::make_shared<Arena>();
    LineBlock block;
    block.arena = arena;
    for (const auto& l : lines) {
      block.lines.push_back(arena->Copy(l));
    }
    pipeline.FeedBlock(std::move(block));
  } else {
    for (const auto& l : lines) {
      pipeline.FeedLine(l);
    }
  }
  pipeline.Finish();
  EXPECT_GT(sessions, 0u);
  return digest;
}

TEST(LivePipelineParity, FeedBlockMatchesFeedLineAcrossWorkerCounts) {
  const auto lines = WireCorpus();
  for (size_t workers : {1, 2, 4}) {
    const uint64_t via_lines = DigestSessions(lines, false, workers);
    const uint64_t via_blocks = DigestSessions(lines, true, workers);
    EXPECT_EQ(via_blocks, via_lines) << "workers=" << workers;
  }
}

}  // namespace
}  // namespace ts
