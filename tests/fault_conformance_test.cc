// Crash/recovery conformance suite: the full live ingest path — LogServer
// over real TCP -> SocketIngestSource -> LivePipeline (sharded) ->
// SessionStore — run under hundreds of seeded fault schedules, asserting the
// closed-session multiset digest and the chained store-query digest are
// byte-identical to a fault-free run, and that every archive record arrived
// exactly once (client records_in == archive size: no loss, no duplicates).
//
// Every schedule is a FaultPlan drawn from a seed; a failing run prints the
// seed and both plan texts, which replay the exact schedule (see
// docs/FAULT_TESTING.md). The exploratory lane reads TS_FAULT_SEED from the
// environment (CI passes $GITHUB_RUN_ID) and writes the failing plan to
// TS_FAULT_ARTIFACT so the run can be attached to a bug.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/analytics/session_digest.h"
#include "src/analytics/session_store.h"
#include "src/ckpt/checkpointer.h"
#include "src/ckpt/live_checkpoint.h"
#include "src/common/rng.h"
#include "src/core/live_pipeline.h"
#include "src/fault/fault_plan.h"
#include "src/fault/scripted_injector.h"
#include "src/log/wire_format.h"
#include "src/net/log_server.h"
#include "src/net/socket_ingest.h"
#include "src/store/cold_tier.h"
#include "src/store/tiered_digest.h"
#include "src/workload/generator.h"

namespace ts {
namespace {

std::shared_ptr<std::vector<std::string>> MakeArchive(double records_per_sec,
                                                      EventTime seconds,
                                                      bool free_text = false) {
  GeneratorConfig config;
  config.seed = 99;
  config.duration_ns = seconds * kNanosPerSecond;
  config.target_records_per_sec = records_per_sec;
  config.free_text_payloads = free_text;
  TraceGenerator gen(config);
  auto lines = std::make_shared<std::vector<std::string>>();
  Epoch epoch = 0;
  std::vector<LogRecord> records;
  while (gen.NextEpoch(&epoch, &records)) {
    for (const auto& r : records) {
      lines->push_back(ToWireFormat(r));
    }
  }
  return lines;
}

// Exploratory-lane width: the per-PR CI job runs the base schedule count;
// the nightly soak sets TS_FAULT_SCHEDULE_MULTIPLIER (e.g. 5) to sweep a
// proportionally larger region of the schedule space per seed. Clamped so a
// typo'd value cannot wedge the lane past its ctest timeout.
uint64_t ScheduleMultiplier() {
  const char* text = std::getenv("TS_FAULT_SCHEDULE_MULTIPLIER");
  if (text == nullptr || *text == '\0') {
    return 1;
  }
  const uint64_t value = std::strtoull(text, nullptr, 10);
  return value < 1 ? 1 : (value > 20 ? 20 : value);
}

uint64_t WireBytes(const std::vector<std::string>& lines) {
  uint64_t total = 0;
  for (const auto& l : lines) {
    total += l.size() + 1;
  }
  return total;
}

struct RunResult {
  bool eos = false;
  uint64_t records_in = 0;
  uint64_t parse_failures = 0;
  uint64_t sessions = 0;
  uint64_t session_digest = 0;
  uint64_t store_digest = 0;
  uint64_t reconnects = 0;
  uint64_t templates = 0;        // Learned templates (mining lanes only).
  uint64_t template_digest = 0;  // FNV over the sorted (id, hits, text) dump.
};

// FNV-1a over the full template dictionary: any drift in template ids, hit
// counts, or learned text between two runs changes this value.
uint64_t TemplateDictionaryDigest(const std::vector<TemplateInfo>& dict) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    h ^= '\n';
    h *= 1099511628211ull;
  };
  for (const auto& t : dict) {
    mix(std::to_string(t.id) + " " + std::to_string(t.hits) + " " + t.text);
  }
  return h;
}

// The determinism contract's reference point: the same lines fed straight
// into the pipeline, no sockets, no faults.
RunResult RunInMemory(const std::vector<std::string>& lines,
                      bool mine = false) {
  RunResult result;
  SessionStore::Options store_options;
  store_options.max_bytes = 1ull << 30;
  SessionStore store(store_options);
  std::mutex mu;
  std::set<std::string> ids;

  LivePipelineOptions options;
  options.workers = 2;
  options.mine_templates = mine;
  LivePipeline pipeline(options, [&](Session&& s) {
    thread_local std::string scratch;
    const uint64_t d = SessionDigest(s, &scratch);
    {
      std::lock_guard<std::mutex> lock(mu);
      result.session_digest ^= d;
      ids.insert(s.id);
    }
    store.Insert(std::move(s));
  });
  for (const auto& l : lines) {
    pipeline.FeedLine(l);
  }
  pipeline.Finish();

  result.eos = true;
  result.records_in = pipeline.records();
  result.parse_failures = pipeline.parse_failures();
  result.sessions = pipeline.sessions_closed();
  result.store_digest = ChainedStoreDigest(store, ids);
  const auto dict = pipeline.TemplateSnapshot();
  result.templates = dict.size();
  result.template_digest = TemplateDictionaryDigest(dict);
  return result;
}

// One conformance run: serve `lines` through a fault-injected LogServer,
// consume through a fault-injected SocketIngestSource, sessionize, digest.
RunResult RunOverFaultyTransport(
    std::shared_ptr<const std::vector<std::string>> lines,
    const FaultPlan& client_plan, const FaultPlan& server_plan,
    bool mine = false) {
  RunResult result;
  ScriptedInjector client_injector(client_plan);
  ScriptedInjector server_injector(server_plan);

  LogServerOptions server_options;
  server_options.fault_injector = &server_injector;
  LogServer server(server_options, lines);
  EXPECT_TRUE(server.Start());
  std::thread server_thread([&server] { server.Run(); });

  SessionStore::Options store_options;
  store_options.max_bytes = 1ull << 30;
  SessionStore store(store_options);
  std::mutex mu;
  std::set<std::string> ids;

  LivePipelineOptions pipeline_options;
  pipeline_options.workers = 2;
  pipeline_options.mine_templates = mine;
  LivePipeline pipeline(pipeline_options, [&](Session&& s) {
    thread_local std::string scratch;
    const uint64_t d = SessionDigest(s, &scratch);
    {
      std::lock_guard<std::mutex> lock(mu);
      result.session_digest ^= d;
      ids.insert(s.id);
    }
    store.Insert(std::move(s));
  });

  SocketIngestOptions client_options;
  client_options.port = server.port();
  client_options.backoff_base_ms = 1;
  client_options.backoff_max_ms = 20;
  client_options.attempt_limit = 0;  // The plan decides when connects work.
  client_options.fault_injector = &client_injector;
  SocketIngestSource client(client_options);

  std::vector<std::string> batch;
  while (true) {
    batch.clear();
    const auto poll = client.PollLines(&batch, /*timeout_ms=*/200);
    for (auto& line : batch) {
      pipeline.FeedLine(std::move(line));
    }
    pipeline.Flush();
    if (poll == SocketIngestSource::Poll::kEndOfStream) {
      result.eos = true;
      break;
    }
    if (poll == SocketIngestSource::Poll::kFailed) {
      break;
    }
  }
  pipeline.Finish();
  server.Stop();
  server_thread.join();

  result.records_in = client.stats().Snapshot().records_in;
  result.reconnects = client.stats().Snapshot().reconnects;
  result.parse_failures = pipeline.parse_failures();
  result.sessions = pipeline.sessions_closed();
  result.store_digest = ChainedStoreDigest(store, ids);
  const auto dict = pipeline.TemplateSnapshot();
  result.templates = dict.size();
  result.template_digest = TemplateDictionaryDigest(dict);
  return result;
}

class FaultConformance : public ::testing::Test {
 protected:
  // One shared archive and fault-free baseline across all seeds: building
  // them once keeps 200+ schedules inside the suite's time budget.
  static void SetUpTestSuite() {
    archive_ = new std::shared_ptr<std::vector<std::string>>(
        MakeArchive(/*records_per_sec=*/2'000, /*seconds=*/2));
    baseline_ = new RunResult(RunInMemory(**archive_));
    ASSERT_GT((*archive_)->size(), 2'000u);
    ASSERT_GT(baseline_->sessions, 0u);
    ASSERT_EQ(baseline_->parse_failures, 0u);
  }
  static void TearDownTestSuite() {
    delete archive_;
    delete baseline_;
    archive_ = nullptr;
    baseline_ = nullptr;
  }

  static const std::vector<std::string>& archive() { return **archive_; }
  static std::shared_ptr<const std::vector<std::string>> archive_ptr() {
    return *archive_;
  }
  static const RunResult& baseline() { return *baseline_; }

  // Runs one seeded schedule and asserts full conformance: graceful end,
  // exactly-once delivery, zero parse failures, identical digests.
  void CheckSeed(uint64_t seed, const std::string& profile) {
    FaultProfile resolved;
    ASSERT_TRUE(
        FaultPlan::ResolveProfile(profile, WireBytes(archive()), &resolved));
    // Independent schedules for the two sides of the connection; both derive
    // from `seed` so one number replays the pair.
    const FaultPlan client_plan =
        FaultPlan::FromSeed(seed * 2 + 1, profile, resolved);
    const FaultPlan server_plan =
        FaultPlan::FromSeed(seed * 2 + 2, profile, resolved);
    const std::string replay = "seed " + std::to_string(seed) +
                               " — replay with:\n--- client plan ---\n" +
                               client_plan.ToText() + "--- server plan ---\n" +
                               server_plan.ToText();

    const RunResult run =
        RunOverFaultyTransport(archive_ptr(), client_plan, server_plan);
    ASSERT_TRUE(run.eos) << replay;
    EXPECT_EQ(run.records_in, archive().size()) << replay;
    EXPECT_EQ(run.parse_failures, 0u) << replay;
    EXPECT_EQ(run.sessions, baseline().sessions) << replay;
    EXPECT_EQ(run.session_digest, baseline().session_digest) << replay;
    EXPECT_EQ(run.store_digest, baseline().store_digest) << replay;
  }

 private:
  static std::shared_ptr<std::vector<std::string>>* archive_;
  static RunResult* baseline_;
};

std::shared_ptr<std::vector<std::string>>* FaultConformance::archive_ = nullptr;
RunResult* FaultConformance::baseline_ = nullptr;

TEST_F(FaultConformance, FaultFreeTransportMatchesInMemory) {
  // Schedule zero: empty plans. The socket path with injectors wired but
  // firing nothing must already match the in-memory reference.
  const RunResult run =
      RunOverFaultyTransport(archive_ptr(), FaultPlan{}, FaultPlan{});
  ASSERT_TRUE(run.eos);
  EXPECT_EQ(run.records_in, archive().size());
  EXPECT_EQ(run.reconnects, 0u);
  EXPECT_EQ(run.session_digest, baseline().session_digest);
  EXPECT_EQ(run.store_digest, baseline().store_digest);
}

TEST_F(FaultConformance, HundredMildSchedules) {
  for (uint64_t seed = 0; seed < 100; ++seed) {
    CheckSeed(seed, "mild");
    if (HasFatalFailure() || HasNonfatalFailure()) {
      return;  // The replay banner already names the seed.
    }
  }
}

TEST_F(FaultConformance, HundredAggressiveSchedules) {
  for (uint64_t seed = 100; seed < 200; ++seed) {
    CheckSeed(seed, "aggressive");
    if (HasFatalFailure() || HasNonfatalFailure()) {
      return;
    }
  }
}

TEST_F(FaultConformance, CorruptingSchedulesSurviveWithAccounting) {
  // Corruption legitimately changes bytes, so digest identity is out; the
  // contract here is weaker but still sharp: the pipeline neither crashes
  // nor wedges, the stream still ends in #EOS, nothing is double-counted
  // (records_in never exceeds the archive: corruption can only merge lines,
  // the '\n' guard means it cannot split them), and every corrupted byte is
  // visible in the injector's accounting.
  for (uint64_t seed = 500; seed < 510; ++seed) {
    FaultProfile resolved;
    ASSERT_TRUE(FaultPlan::ResolveProfile("corrupting", WireBytes(archive()),
                                          &resolved));
    const FaultPlan client_plan =
        FaultPlan::FromSeed(seed * 2 + 1, "corrupting", resolved);
    const RunResult run = RunOverFaultyTransport(archive_ptr(), client_plan,
                                                 FaultPlan{});
    ASSERT_TRUE(run.eos) << "seed " << seed << "\n" << client_plan.ToText();
    // Each corrupted byte can destroy at most one record framing (merging
    // two lines by hitting their '\n') or damage one control line (a mangled
    // #EOS is counted as a record), so the delivered count can drift from
    // the archive by at most the corruption budget in either direction.
    uint64_t corrupt_budget = 0;
    for (const auto& event : client_plan.events) {
      if (event.type == FaultType::kCorrupt) {
        corrupt_budget += event.arg;
      }
    }
    EXPECT_LE(run.records_in, archive().size() + corrupt_budget)
        << "seed " << seed;
    EXPECT_GE(run.records_in + corrupt_budget, archive().size())
        << "seed " << seed;
  }
}

// --- Deterministic severing (satellite S2) ---
//
// Server-side injector byte offsets count exactly the archive bytes written
// to the socket (hellos arrive on the recv path, which is not hooked on the
// server), so `at` offsets computed from line lengths sever the connection
// precisely on — or precisely inside — a chosen record.

class FaultBoundary : public ::testing::Test {
 protected:
  static uint64_t OffsetAfterRecords(const std::vector<std::string>& lines,
                                     size_t n) {
    uint64_t off = 0;
    for (size_t i = 0; i < n && i < lines.size(); ++i) {
      off += lines[i].size() + 1;
    }
    return off;
  }

  // Serves `lines` through a server whose plan kills at byte `kill_at`,
  // returns what one client sees end-to-end.
  static void RunWithServerKill(
      std::shared_ptr<const std::vector<std::string>> lines, uint64_t kill_at,
      size_t max_conn_buffer_bytes, std::vector<std::string>* received,
      uint64_t* reconnects, uint64_t* resumes) {
    FaultPlan plan;
    plan.events.push_back({FaultType::kKill, kill_at, 0});
    ScriptedInjector server_injector(plan);

    LogServerOptions server_options;
    server_options.fault_injector = &server_injector;
    server_options.max_conn_buffer_bytes = max_conn_buffer_bytes;
    LogServer server(server_options, lines);
    ASSERT_TRUE(server.Start());
    std::thread server_thread([&server] { server.Run(); });

    SocketIngestOptions client_options;
    client_options.port = server.port();
    client_options.backoff_base_ms = 1;
    client_options.backoff_max_ms = 20;
    SocketIngestSource client(client_options);
    ASSERT_TRUE(client.ReadAll(received));
    server.Stop();
    server_thread.join();

    *reconnects = client.stats().Snapshot().reconnects;
    *resumes = server.stats().Snapshot().resumes;
    EXPECT_EQ(server_injector.counters().kills, 1u);
  }
};

TEST_F(FaultBoundary, KillExactlyOnRecordBoundaryResumesExactlyOnce) {
  auto archive = MakeArchive(2'000, 1);
  ASSERT_GT(archive->size(), 100u);
  // Sever after record 49's trailing newline: the framer holds no partial
  // line, and the resume hello must ask for offset 50 exactly.
  const uint64_t cut = OffsetAfterRecords(*archive, 50);

  std::vector<std::string> received;
  uint64_t reconnects = 0, resumes = 0;
  RunWithServerKill(archive, cut, /*max_conn_buffer_bytes=*/256 << 10,
                    &received, &reconnects, &resumes);
  EXPECT_EQ(received, *archive);  // Exactly once, in order.
  EXPECT_EQ(reconnects, 1u);
  EXPECT_EQ(resumes, 1u);
}

TEST_F(FaultBoundary, KillMidRecordWithPartiallyFlushedBufferResumes) {
  auto archive = MakeArchive(2'000, 1);
  ASSERT_GT(archive->size(), 100u);
  // Sever in the middle of record 50, with a tiny send buffer so the server
  // is mid-flush (dozens of partial writes in flight) when the kill lands.
  // The client's framer must drop the truncated tail and resume at 50.
  const uint64_t cut =
      OffsetAfterRecords(*archive, 50) + (*archive)[50].size() / 2;

  std::vector<std::string> received;
  uint64_t reconnects = 0, resumes = 0;
  RunWithServerKill(archive, cut, /*max_conn_buffer_bytes=*/512, &received,
                    &reconnects, &resumes);
  EXPECT_EQ(received, *archive);  // The half-sent record arrives exactly once.
  EXPECT_EQ(reconnects, 1u);
  EXPECT_EQ(resumes, 1u);
}

// --- Full-process crash/recovery schedules (ts_ckpt) ---
//
// Each schedule simulates kill -9 + restart of the sessionizer process while
// the log server stays up: an "incarnation" builds a fresh Checkpointer,
// SessionStore, LivePipeline, and SocketIngestSource, restores the newest
// valid snapshot, resumes the stream from its offset, then — at a seeded
// absolute record position, possibly mid-batch — abandons everything without
// any shutdown checkpoint (in-flight state is simply lost, like SIGKILL).
// Checkpoints are taken on a seeded record cadence; the worker count is
// re-drawn per incarnation, so restores also cross shard layouts. The final
// incarnation's digests must match the fault-free in-memory baseline exactly.

struct CrashRunResult {
  RunResult run;
  int incarnations = 0;
  int crashes = 0;
  uint64_t snapshots_written = 0;
  uint64_t replayed_duplicates = 0;  // Closed sessions already in the store.
};

// One full kill-9/restart schedule against `archive_lines`. With `mine` set
// every incarnation runs the template miner, each snapshot carries its state
// ('T' frame), and the restore must resume mining exactly where the snapshot
// left off — the final dictionary digest is asserted against a fault-free run.
CrashRunResult RunCrashSchedule(
    std::shared_ptr<std::vector<std::string>> archive_lines, uint64_t seed,
    bool mine) {
  CrashRunResult out;
  Rng rng(seed ^ 0xCDB4D88C6A2E9C01ULL);
  const uint64_t total = archive_lines->size();

  const std::string dir = ::testing::TempDir() + "ts_crash_" +
                          std::to_string(::getpid()) + "_" +
                          (mine ? "m" : "p") + std::to_string(seed);
  const std::string cleanup = "rm -rf '" + dir + "'";
  EXPECT_EQ(std::system(cleanup.c_str()), 0);

  LogServerOptions server_options;
  LogServer server(server_options, archive_lines);
  EXPECT_TRUE(server.Start());
  std::thread server_thread([&server] { server.Run(); });

  // 1-3 kills per schedule, then the last incarnation runs to EOS. A hard
  // incarnation cap guards against a restore bug looping forever.
  int crashes_left = 1 + static_cast<int>(rng.NextBelow(3));
  bool eos = false;
  for (int incarnation = 0; incarnation < 16 && !eos; ++incarnation) {
    ++out.incarnations;

    CheckpointerOptions ckpt_options;
    ckpt_options.dir = dir;
    ckpt_options.retain = 2 + static_cast<size_t>(rng.NextBelow(2));
    ckpt_options.interval_ms = 0;  // Record-count cadence below.
    Checkpointer ckpt(ckpt_options);
    CheckpointState state;
    ckpt.RestoreLatest(&state);
    const uint64_t resume = state.resume_offset;
    const uint64_t base_records = state.records;
    const uint64_t base_parse_failures = state.parse_failures;
    EXPECT_LE(resume, total);

    SessionStore::Options store_options;
    store_options.max_bytes = 1ull << 30;
    SessionStore store(store_options);
    std::mutex mu;
    std::set<std::string> ids;
    uint64_t xor_digest = 0;
    uint64_t sessions = 0;
    uint64_t duplicates = 0;

    LivePipelineOptions pipeline_options;
    pipeline_options.workers = 1 + rng.NextBelow(4);
    pipeline_options.mine_templates = mine;
    LivePipeline pipeline(pipeline_options, [&](Session&& s) {
      thread_local std::string scratch;
      const bool duplicate = store.Contains(s.id, s.fragment_index);
      const uint64_t d = SessionDigest(s, &scratch);
      {
        std::lock_guard<std::mutex> lock(mu);
        if (duplicate) {
          // An exact resume offset makes replay re-derive only state the
          // snapshot does not already hold; count violations, never merge.
          ++duplicates;
          return;
        }
        xor_digest ^= d;
        ++sessions;
        ids.insert(s.id);
      }
      store.Insert(std::move(s));
    });
    RestoreLiveCheckpoint(std::move(state), &pipeline, &store);
    {
      // Sessions carried over in the snapshot count toward the digests.
      std::string scratch;
      store.ForEachSession([&](const Session& s) {
        xor_digest ^= SessionDigest(s, &scratch);
        ++sessions;
        ids.insert(s.id);
      });
    }

    SocketIngestOptions client_options;
    client_options.port = server.port();
    client_options.backoff_base_ms = 1;
    client_options.backoff_max_ms = 20;
    client_options.resume_offset = resume;
    SocketIngestSource client(client_options);

    // Crash position (absolute record index, may fall mid-batch) and
    // checkpoint cadence for this incarnation.
    const bool crash_this = crashes_left > 0 && resume < total;
    const uint64_t crash_at =
        crash_this ? resume + 1 + rng.NextBelow(total - resume) : 0;
    const uint64_t ckpt_every = 100 + rng.NextBelow(900);

    uint64_t fed = resume;   // Absolute position of the next record to feed.
    uint64_t since_ckpt = 0;
    bool crashed = false;
    std::vector<std::string> batch;
    while (!crashed) {
      batch.clear();
      const auto poll = client.PollLines(&batch, /*timeout_ms=*/200);
      for (auto& line : batch) {
        if (crash_this && fed == crash_at) {
          crashed = true;  // SIGKILL: the rest of the batch never lands.
          break;
        }
        pipeline.FeedLine(std::move(line));
        ++fed;
        ++since_ckpt;
      }
      if (crashed) {
        break;
      }
      pipeline.Flush();
      if (poll == SocketIngestSource::Poll::kEndOfStream) {
        eos = true;
        break;
      }
      if (poll == SocketIngestSource::Poll::kFailed) {
        break;  // Leaves out.run.eos false; the caller fails the seed.
      }
      if (since_ckpt >= ckpt_every) {
        CheckpointState snap =
            CaptureLiveCheckpoint(&pipeline, store, client.records_received());
        snap.records += base_records;
        snap.parse_failures += base_parse_failures;
        EXPECT_TRUE(ckpt.Write(snap));
        ++out.snapshots_written;
        since_ckpt = 0;
      }
    }
    pipeline.Finish();  // Joins workers; a crashed incarnation's state is
                        // discarded wholesale along with store/digests.
    if (crashed) {
      ++out.crashes;
      --crashes_left;
      continue;
    }
    if (!eos) {
      break;  // Transport failure: surface as a non-conformant run.
    }
    out.run.eos = true;
    out.run.records_in = base_records + pipeline.records();
    out.run.parse_failures = base_parse_failures + pipeline.parse_failures();
    out.run.sessions = sessions;
    out.run.session_digest = xor_digest;
    out.run.store_digest = ChainedStoreDigest(store, ids);
    const auto dict = pipeline.TemplateSnapshot();
    out.run.templates = dict.size();
    out.run.template_digest = TemplateDictionaryDigest(dict);
    out.replayed_duplicates = duplicates;
  }

  server.Stop();
  server_thread.join();
  EXPECT_EQ(std::system(cleanup.c_str()), 0);
  return out;
}

// Runs one seeded kill-9/restart schedule and asserts the recovered run is
// indistinguishable from the fault-free baseline. With `mine` the template
// dictionary must match too: same ids, same hit counts, same learned text.
void CheckCrashConformance(std::shared_ptr<std::vector<std::string>> archive,
                           const RunResult& baseline, uint64_t seed,
                           bool mine) {
  const CrashRunResult out = RunCrashSchedule(archive, seed, mine);
  const std::string banner =
      std::string(mine ? "mined " : "") + "crash schedule seed " +
      std::to_string(seed) + " (" + std::to_string(out.crashes) +
      " crash(es), " + std::to_string(out.incarnations) + " incarnation(s), " +
      std::to_string(out.snapshots_written) + " snapshot(s))";
  ASSERT_TRUE(out.run.eos) << banner;
  EXPECT_EQ(out.crashes, out.incarnations - 1) << banner;
  EXPECT_EQ(out.run.records_in, archive->size()) << banner;
  EXPECT_EQ(out.run.parse_failures, 0u) << banner;
  EXPECT_EQ(out.replayed_duplicates, 0u) << banner;
  EXPECT_EQ(out.run.sessions, baseline.sessions) << banner;
  EXPECT_EQ(out.run.session_digest, baseline.session_digest) << banner;
  EXPECT_EQ(out.run.store_digest, baseline.store_digest) << banner;
  if (mine) {
    EXPECT_GT(out.run.templates, 0u) << banner;
    EXPECT_EQ(out.run.templates, baseline.templates) << banner;
    EXPECT_EQ(out.run.template_digest, baseline.template_digest) << banner;
  }
}

class CrashRecovery : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    archive_ = new std::shared_ptr<std::vector<std::string>>(
        MakeArchive(/*records_per_sec=*/2'000, /*seconds=*/2));
    baseline_ = new RunResult(RunInMemory(**archive_));
    ASSERT_GT((*archive_)->size(), 2'000u);
    ASSERT_GT(baseline_->sessions, 0u);
  }
  static void TearDownTestSuite() {
    delete archive_;
    delete baseline_;
    archive_ = nullptr;
    baseline_ = nullptr;
  }

  void CheckCrashSeed(uint64_t seed) {
    CheckCrashConformance(*archive_, *baseline_, seed, /*mine=*/false);
  }

 private:
  static std::shared_ptr<std::vector<std::string>>* archive_;
  static RunResult* baseline_;
};

std::shared_ptr<std::vector<std::string>>* CrashRecovery::archive_ = nullptr;
RunResult* CrashRecovery::baseline_ = nullptr;

TEST_F(CrashRecovery, FirstFiftyKillRestartSchedules) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    CheckCrashSeed(seed);
    if (HasFatalFailure() || HasNonfatalFailure()) {
      return;  // The banner already names the seed.
    }
  }
}

TEST_F(CrashRecovery, SecondFiftyKillRestartSchedules) {
  for (uint64_t seed = 50; seed < 100; ++seed) {
    CheckCrashSeed(seed);
    if (HasFatalFailure() || HasNonfatalFailure()) {
      return;
    }
  }
}

TEST_F(CrashRecovery, ColdStartWithEmptyCheckpointDirMatchesBaseline) {
  // Seed chosen so RunCrashSchedule still kills at least once; the very first
  // incarnation necessarily restores nothing and must start from offset 0.
  CheckCrashSeed(7919);
}

TEST_F(CrashRecovery, ExploratorySeedFromEnvironment) {
  const char* seed_text = std::getenv("TS_FAULT_SEED");
  if (seed_text == nullptr || *seed_text == '\0') {
    GTEST_SKIP() << "set TS_FAULT_SEED to run exploratory crash schedules";
  }
  const uint64_t base = std::strtoull(seed_text, nullptr, 10);
  const uint64_t schedules = 4 * ScheduleMultiplier();
  for (uint64_t i = 0; i < schedules && !HasFailure(); ++i) {
    CheckCrashSeed(base + i * 104'729);
  }
  if (HasFailure()) {
    if (const char* artifact = std::getenv("TS_FAULT_ARTIFACT")) {
      FILE* f = std::fopen(artifact, "a");
      if (f != nullptr) {
        std::fprintf(f,
                     "# ts_ckpt exploratory crash-schedule failure\n"
                     "TS_FAULT_SEED=%llu\n",
                     static_cast<unsigned long long>(base));
        std::fclose(f);
      }
    }
  }
}

// --- Template-mining conformance lanes (ts_parse) ---
//
// Mining runs on the single ingest thread in arrival order, so the rewritten
// stream — and with it the store contents and the learned dictionary — must
// be byte-identical no matter how the transport stutters (same arrival
// prefix => same miner state), and across kill -9/restart (the snapshot's
// 'T' frame must restore the miner exactly, or replayed records would split
// into fresh template ids and every digest below would diverge).

class TemplateFaultConformance : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    archive_ = new std::shared_ptr<std::vector<std::string>>(MakeArchive(
        /*records_per_sec=*/2'000, /*seconds=*/2, /*free_text=*/true));
    baseline_ = new RunResult(RunInMemory(**archive_, /*mine=*/true));
    ASSERT_GT((*archive_)->size(), 2'000u);
    ASSERT_GT(baseline_->sessions, 0u);
    ASSERT_GT(baseline_->templates, 0u);
  }
  static void TearDownTestSuite() {
    delete archive_;
    delete baseline_;
    archive_ = nullptr;
    baseline_ = nullptr;
  }

  static const std::vector<std::string>& archive() { return **archive_; }
  static std::shared_ptr<const std::vector<std::string>> archive_ptr() {
    return *archive_;
  }
  static const RunResult& baseline() { return *baseline_; }

  // One seeded fault schedule with mining on: full conformance plus an
  // identical template dictionary (ids, hit counts, learned text).
  void CheckMinedSeed(uint64_t seed, const std::string& profile) {
    FaultProfile resolved;
    ASSERT_TRUE(
        FaultPlan::ResolveProfile(profile, WireBytes(archive()), &resolved));
    const FaultPlan client_plan =
        FaultPlan::FromSeed(seed * 2 + 1, profile, resolved);
    const FaultPlan server_plan =
        FaultPlan::FromSeed(seed * 2 + 2, profile, resolved);
    const std::string replay = "mined seed " + std::to_string(seed) +
                               " — replay with:\n--- client plan ---\n" +
                               client_plan.ToText() + "--- server plan ---\n" +
                               server_plan.ToText();

    const RunResult run = RunOverFaultyTransport(*archive_, client_plan,
                                                 server_plan, /*mine=*/true);
    ASSERT_TRUE(run.eos) << replay;
    EXPECT_EQ(run.records_in, archive().size()) << replay;
    EXPECT_EQ(run.parse_failures, 0u) << replay;
    EXPECT_EQ(run.sessions, baseline().sessions) << replay;
    EXPECT_EQ(run.session_digest, baseline().session_digest) << replay;
    EXPECT_EQ(run.store_digest, baseline().store_digest) << replay;
    EXPECT_EQ(run.templates, baseline().templates) << replay;
    EXPECT_EQ(run.template_digest, baseline().template_digest) << replay;
  }

 private:
  static std::shared_ptr<std::vector<std::string>>* archive_;
  static RunResult* baseline_;
};

std::shared_ptr<std::vector<std::string>>* TemplateFaultConformance::archive_ =
    nullptr;
RunResult* TemplateFaultConformance::baseline_ = nullptr;

TEST_F(TemplateFaultConformance, FaultFreeMinedTransportMatchesInMemory) {
  const RunResult run = RunOverFaultyTransport(archive_ptr(), FaultPlan{},
                                               FaultPlan{}, /*mine=*/true);
  ASSERT_TRUE(run.eos);
  EXPECT_EQ(run.records_in, archive().size());
  EXPECT_EQ(run.session_digest, baseline().session_digest);
  EXPECT_EQ(run.store_digest, baseline().store_digest);
  EXPECT_GT(run.templates, 0u);
  EXPECT_EQ(run.templates, baseline().templates);
  EXPECT_EQ(run.template_digest, baseline().template_digest);
}

TEST_F(TemplateFaultConformance, MinedMildSchedules) {
  for (uint64_t seed = 300; seed < 310; ++seed) {
    CheckMinedSeed(seed, "mild");
    if (HasFatalFailure() || HasNonfatalFailure()) {
      return;  // The replay banner already names the seed.
    }
  }
}

TEST_F(TemplateFaultConformance, MinedAggressiveSchedules) {
  for (uint64_t seed = 310; seed < 320; ++seed) {
    CheckMinedSeed(seed, "aggressive");
    if (HasFatalFailure() || HasNonfatalFailure()) {
      return;
    }
  }
}

class TemplateCrashRecovery : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    archive_ = new std::shared_ptr<std::vector<std::string>>(MakeArchive(
        /*records_per_sec=*/2'000, /*seconds=*/2, /*free_text=*/true));
    baseline_ = new RunResult(RunInMemory(**archive_, /*mine=*/true));
    ASSERT_GT((*archive_)->size(), 2'000u);
    ASSERT_GT(baseline_->sessions, 0u);
    ASSERT_GT(baseline_->templates, 0u);
  }
  static void TearDownTestSuite() {
    delete archive_;
    delete baseline_;
    archive_ = nullptr;
    baseline_ = nullptr;
  }

  void CheckMinedCrashSeed(uint64_t seed) {
    CheckCrashConformance(*archive_, *baseline_, seed, /*mine=*/true);
  }

 private:
  static std::shared_ptr<std::vector<std::string>>* archive_;
  static RunResult* baseline_;
};

std::shared_ptr<std::vector<std::string>>* TemplateCrashRecovery::archive_ =
    nullptr;
RunResult* TemplateCrashRecovery::baseline_ = nullptr;

TEST_F(TemplateCrashRecovery, TwentyKillRestartSchedulesRestoreMinerExactly) {
  // Every snapshot in these schedules carries the miner's 'T' frame; every
  // restart re-imports it and keeps mining the resumed stream. Identical
  // final dictionaries prove restore is exact — a miner that cold-started
  // would re-learn different ids for the replayed suffix.
  for (uint64_t seed = 0; seed < 20; ++seed) {
    CheckMinedCrashSeed(seed);
    if (HasFatalFailure() || HasNonfatalFailure()) {
      return;  // The banner already names the seed.
    }
  }
}

TEST_F(TemplateCrashRecovery, ColdStartMinedScheduleMatchesBaseline) {
  // First incarnation restores nothing: the miner must build from scratch,
  // then survive the schedule's later kills via the 'T' frame.
  CheckMinedCrashSeed(7919);
}

// --- Cold-tier (tiered store) crash conformance ---
//
// Same kill -9/restart discipline as CrashRecovery, but the hot window is
// tiny: most closed sessions are evicted into an on-disk ColdTier that
// persists across incarnations exactly like the checkpoint directory, and
// every snapshot write is preceded by the FlushPending durability barrier.
// Kills land mid-spill by construction (Abandon() models the SIGKILL
// instant: whatever the spill thread had not yet made durable is lost, and
// the next incarnation re-discovers only the segments that really hit disk).
// The conformance bar: after the final incarnation reaches EOS, the tiered
// digest over hot ∪ cold is byte-identical to an unbounded fault-free
// baseline — evictions, spills, restarts and kills lose nothing and invent
// nothing. Unlike the hot-only suite, replayed duplicates are EXPECTED: a
// session evicted and made durable before a crash re-derives on replay and
// is deduplicated against the cold index instead of being re-inserted.

struct ColdCrashRunResult {
  bool eos = false;
  int incarnations = 0;
  int crashes = 0;
  uint64_t snapshots_written = 0;
  uint64_t records_in = 0;
  uint64_t parse_failures = 0;
  uint64_t replayed_duplicates = 0;
  uint64_t sessions = 0;       // |hot ∪ cold| (id, fragment) pairs.
  uint64_t cold_sessions = 0;  // Final incarnation's cold-tier population.
  uint64_t cold_segments = 0;
  uint64_t tiered_digest = 0;  // Chained digest over hot ∪ cold.
};

ColdCrashRunResult RunColdCrashSchedule(
    std::shared_ptr<std::vector<std::string>> archive_lines, uint64_t seed) {
  ColdCrashRunResult out;
  Rng rng(seed ^ 0xCDB4D88C6A2E9C01ULL);
  const uint64_t total = archive_lines->size();

  const std::string base_dir = ::testing::TempDir() + "ts_coldcrash_" +
                               std::to_string(::getpid()) + "_" +
                               std::to_string(seed);
  const std::string cleanup = "rm -rf '" + base_dir + "'";
  EXPECT_EQ(std::system(cleanup.c_str()), 0);
  const std::string ckpt_dir = base_dir + "/ckpt";
  const std::string cold_dir = base_dir + "/cold";
  EXPECT_EQ(std::system(("mkdir -p '" + base_dir + "'").c_str()), 0);

  LogServerOptions server_options;
  LogServer server(server_options, archive_lines);
  EXPECT_TRUE(server.Start());
  std::thread server_thread([&server] { server.Run(); });

  int crashes_left = 1 + static_cast<int>(rng.NextBelow(3));
  bool eos = false;
  for (int incarnation = 0; incarnation < 16 && !eos; ++incarnation) {
    ++out.incarnations;

    CheckpointerOptions ckpt_options;
    ckpt_options.dir = ckpt_dir;
    ckpt_options.retain = 2 + static_cast<size_t>(rng.NextBelow(2));
    ckpt_options.interval_ms = 0;
    Checkpointer ckpt(ckpt_options);
    CheckpointState state;
    ckpt.RestoreLatest(&state);
    const uint64_t resume = state.resume_offset;
    const uint64_t base_records = state.records;
    const uint64_t base_parse_failures = state.parse_failures;
    EXPECT_LE(resume, total);

    // Fresh ColdTier per incarnation, same directory: a restart re-discovers
    // exactly the segments the previous incarnation made durable. Declared
    // before the store so eviction-sink appends can never outlive it.
    ColdTierOptions cold_options;
    cold_options.dir = cold_dir;
    cold_options.segment_target_bytes = 16u << 10;  // Many small segments.
    ColdTier cold(cold_options);
    EXPECT_TRUE(cold.Start());

    // A hot window far smaller than the archive's session volume, so the
    // schedule spends its whole life evicting through the spill path.
    SessionStore::Options store_options;
    store_options.max_bytes = 64u << 10;
    SessionStore store(store_options);
    store.SetEvictionSink([&cold](Session&& s) { cold.Append(std::move(s)); },
                          [&cold] { cold.WaitForSpace(); });
    std::atomic<uint64_t> duplicates{0};

    LivePipelineOptions pipeline_options;
    pipeline_options.workers = 1 + rng.NextBelow(4);
    LivePipeline pipeline(pipeline_options, [&](Session&& s) {
      if (store.Contains(s.id, s.fragment_index) ||
          cold.Contains(s.id, s.fragment_index)) {
        // Already hot (restored in the snapshot) or already durable cold:
        // replay re-derived state the tiers still hold. Never merge.
        duplicates.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      store.Insert(std::move(s));
    });
    RestoreLiveCheckpoint(std::move(state), &pipeline, &store);

    SocketIngestOptions client_options;
    client_options.port = server.port();
    client_options.backoff_base_ms = 1;
    client_options.backoff_max_ms = 20;
    client_options.resume_offset = resume;
    SocketIngestSource client(client_options);

    const bool crash_this = crashes_left > 0 && resume < total;
    const uint64_t crash_at =
        crash_this ? resume + 1 + rng.NextBelow(total - resume) : 0;
    const uint64_t ckpt_every = 100 + rng.NextBelow(900);

    uint64_t fed = resume;
    uint64_t since_ckpt = 0;
    bool crashed = false;
    std::vector<std::string> batch;
    while (!crashed) {
      batch.clear();
      const auto poll = client.PollLines(&batch, /*timeout_ms=*/200);
      for (auto& line : batch) {
        if (crash_this && fed == crash_at) {
          crashed = true;  // SIGKILL: the rest of the batch never lands.
          break;
        }
        pipeline.FeedLine(std::move(line));
        ++fed;
        ++since_ckpt;
      }
      if (crashed) {
        break;
      }
      pipeline.Flush();
      if (poll == SocketIngestSource::Poll::kEndOfStream) {
        eos = true;
        break;
      }
      if (poll == SocketIngestSource::Poll::kFailed) {
        break;
      }
      if (since_ckpt >= ckpt_every) {
        CheckpointState snap =
            CaptureLiveCheckpoint(&pipeline, store, client.records_received());
        snap.records += base_records;
        snap.parse_failures += base_parse_failures;
        // The durability barrier: every eviction that preceded this capture
        // must be durable in cold before the snapshot may exist — a restore
        // from this snapshot will not replay those sessions.
        EXPECT_TRUE(cold.FlushPending());
        EXPECT_TRUE(ckpt.Write(snap));
        ++out.snapshots_written;
        since_ckpt = 0;
      }
    }
    if (crashed) {
      // The kill instant. Everything after this — including the force-closed
      // partial sessions pipeline.Finish() flushes below — belongs to a dead
      // process and must never reach disk, or the truncated versions would
      // shadow the correct ones on replay.
      cold.Abandon();
    }
    pipeline.Finish();
    if (crashed) {
      ++out.crashes;
      --crashes_left;
      continue;
    }
    if (!eos) {
      break;  // Transport failure: surface as a non-conformant run.
    }
    EXPECT_TRUE(cold.FlushPending());
    out.eos = true;
    out.records_in = base_records + pipeline.records();
    out.parse_failures = base_parse_failures + pipeline.parse_failures();
    out.replayed_duplicates = duplicates.load(std::memory_order_relaxed);
    const ColdTier::Stats cold_stats = cold.stats();
    out.cold_sessions = cold_stats.sessions;
    out.cold_segments = cold_stats.segments;
    EXPECT_EQ(cold_stats.pending, 0u);
    EXPECT_EQ(cold_stats.write_failures, 0u);
    EXPECT_EQ(cold_stats.corrupt, 0u);

    // TieredDigest over hot ∪ cold, counting merged (id, fragment) pairs in
    // the same pass so `sessions` is comparable to the baseline's closes.
    std::set<std::string> all_ids;
    store.ForEachSession([&](const Session& s) { all_ids.insert(s.id); });
    cold.ForEachId([&](const std::string& id) { all_ids.insert(id); });
    std::string canon;
    for (const auto& id : all_ids) {
      const std::vector<Session> merged = MergeTieredFragments(
          store.GetAllFragments(id), cold.GetAllFragments(id));
      for (const auto& s : merged) {
        out.tiered_digest ^= SessionDigest(s, &canon);
        out.tiered_digest = SipHash24(out.tiered_digest);
      }
      out.sessions += merged.size();
    }
  }

  server.Stop();
  server_thread.join();
  EXPECT_EQ(std::system(cleanup.c_str()), 0);
  return out;
}

void CheckColdCrashConformance(
    std::shared_ptr<std::vector<std::string>> archive,
    const RunResult& baseline, uint64_t seed) {
  const ColdCrashRunResult out = RunColdCrashSchedule(archive, seed);
  const std::string banner =
      "cold crash schedule seed " + std::to_string(seed) + " (" +
      std::to_string(out.crashes) + " crash(es), " +
      std::to_string(out.incarnations) + " incarnation(s), " +
      std::to_string(out.snapshots_written) + " snapshot(s), " +
      std::to_string(out.cold_segments) + " cold segment(s), " +
      std::to_string(out.replayed_duplicates) + " replayed duplicate(s))";
  ASSERT_TRUE(out.eos) << banner;
  EXPECT_EQ(out.crashes, out.incarnations - 1) << banner;
  EXPECT_EQ(out.records_in, archive->size()) << banner;
  EXPECT_EQ(out.parse_failures, 0u) << banner;
  // The hot window is tiny by construction; a schedule that never spilled
  // would be testing nothing.
  EXPECT_GT(out.cold_sessions, 0u) << banner;
  EXPECT_GE(out.cold_segments, 1u) << banner;
  EXPECT_EQ(out.sessions, baseline.sessions) << banner;
  EXPECT_EQ(out.tiered_digest, baseline.store_digest) << banner;
}

class ColdTierFaultConformance : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    archive_ = new std::shared_ptr<std::vector<std::string>>(
        MakeArchive(/*records_per_sec=*/2'000, /*seconds=*/2));
    baseline_ = new RunResult(RunInMemory(**archive_));
    ASSERT_GT((*archive_)->size(), 2'000u);
    ASSERT_GT(baseline_->sessions, 0u);
  }
  static void TearDownTestSuite() {
    delete archive_;
    delete baseline_;
    archive_ = nullptr;
    baseline_ = nullptr;
  }

  void CheckColdSeed(uint64_t seed) {
    CheckColdCrashConformance(*archive_, *baseline_, seed);
  }

 private:
  static std::shared_ptr<std::vector<std::string>>* archive_;
  static RunResult* baseline_;
};

std::shared_ptr<std::vector<std::string>>* ColdTierFaultConformance::archive_ =
    nullptr;
RunResult* ColdTierFaultConformance::baseline_ = nullptr;

TEST_F(ColdTierFaultConformance, FirstTenKillRestartSchedules) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    CheckColdSeed(seed);
    if (HasFatalFailure() || HasNonfatalFailure()) {
      return;  // The banner already names the seed.
    }
  }
}

TEST_F(ColdTierFaultConformance, SecondTenKillRestartSchedules) {
  for (uint64_t seed = 10; seed < 20; ++seed) {
    CheckColdSeed(seed);
    if (HasFatalFailure() || HasNonfatalFailure()) {
      return;
    }
  }
}

TEST_F(ColdTierFaultConformance, ExploratorySeedFromEnvironment) {
  const char* seed_text = std::getenv("TS_FAULT_SEED");
  if (seed_text == nullptr || *seed_text == '\0') {
    GTEST_SKIP() << "set TS_FAULT_SEED to run exploratory cold schedules";
  }
  const uint64_t base = std::strtoull(seed_text, nullptr, 10);
  const uint64_t schedules = 4 * ScheduleMultiplier();
  for (uint64_t i = 0; i < schedules && !HasFailure(); ++i) {
    CheckColdSeed(base + i * 104'729);
  }
  if (HasFailure()) {
    if (const char* artifact = std::getenv("TS_FAULT_ARTIFACT")) {
      FILE* f = std::fopen(artifact, "a");
      if (f != nullptr) {
        std::fprintf(f,
                     "# ts_store exploratory cold-crash-schedule failure\n"
                     "TS_FAULT_SEED=%llu\n",
                     static_cast<unsigned long long>(base));
        std::fclose(f);
      }
    }
  }
}

// --- Exploratory lane (satellite S5) ---

TEST_F(FaultConformance, ExploratorySeedFromEnvironment) {
  const char* seed_text = std::getenv("TS_FAULT_SEED");
  if (seed_text == nullptr || *seed_text == '\0') {
    GTEST_SKIP() << "set TS_FAULT_SEED to run an exploratory schedule";
  }
  const uint64_t base = std::strtoull(seed_text, nullptr, 10);
  // A handful of schedules derived from the environment seed, both profiles.
  // The nightly soak widens the sweep via TS_FAULT_SCHEDULE_MULTIPLIER.
  const uint64_t schedules = 8 * ScheduleMultiplier();
  for (uint64_t i = 0; i < schedules && !HasFailure(); ++i) {
    CheckSeed(base + i * 7919, i % 2 == 0 ? "mild" : "aggressive");
  }
  if (HasFailure()) {
    if (const char* artifact = std::getenv("TS_FAULT_ARTIFACT")) {
      // Persist enough to replay: failing base seed and derived schedule
      // seeds. CheckSeed's assert output carries the full plan texts.
      FILE* f = std::fopen(artifact, "w");
      if (f != nullptr) {
        std::fprintf(f, "# ts_fault exploratory failure\nTS_FAULT_SEED=%llu\n",
                     static_cast<unsigned long long>(base));
        std::fclose(f);
      }
    }
  }
}

}  // namespace
}  // namespace ts
