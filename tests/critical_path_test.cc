// Tests for critical-path analysis over trace trees.
#include <gtest/gtest.h>

#include "src/analytics/critical_path.h"

namespace ts {
namespace {

LogRecord Rec(const char* txn, EventTime t, uint32_t service, uint32_t host = 0) {
  LogRecord r;
  r.time = t;
  r.session_id = "S";
  r.txn_id = *TxnId::Parse(txn);
  r.service = service;
  r.host = host;
  return r;
}

TraceTree Build(std::vector<LogRecord> records) {
  Session s;
  s.id = "S";
  s.records = std::move(records);
  auto trees = TraceTree::FromSession(s);
  EXPECT_EQ(trees.size(), 1u);
  return trees[0];
}

TEST(CriticalPath, SingleSpanIsItsOwnPath) {
  auto tree = Build({Rec("1", 0, 5), Rec("1", 100, 5)});
  auto path = ComputeCriticalPath(tree);
  ASSERT_EQ(path.steps.size(), 1u);
  EXPECT_EQ(path.steps[0].service, 5u);
  EXPECT_EQ(path.steps[0].exclusive_ns, 100);
  EXPECT_EQ(path.total_ns, 100);
  EXPECT_DOUBLE_EQ(path.ServiceShare(5), 1.0);
  EXPECT_DOUBLE_EQ(path.ServiceShare(6), 0.0);
}

TEST(CriticalPath, FollowsLatestEndingChild) {
  // Root [0,100]; child 1-1 [10,30] (svc 2); child 1-2 [20,90] (svc 3).
  auto tree = Build({
      Rec("1", 0, 1), Rec("1", 100, 1),
      Rec("1-1", 10, 2), Rec("1-1", 30, 2),
      Rec("1-2", 20, 3), Rec("1-2", 90, 3),
  });
  auto path = ComputeCriticalPath(tree);
  ASSERT_EQ(path.steps.size(), 2u);
  EXPECT_EQ(path.steps[0].service, 1u);
  EXPECT_EQ(path.steps[1].service, 3u);  // 1-2 ends last: the blocker.
  // Root exclusive: head [0,20) + tail (90,100] = 30; child: 70.
  EXPECT_EQ(path.steps[0].exclusive_ns, 30);
  EXPECT_EQ(path.steps[1].exclusive_ns, 70);
  EXPECT_EQ(path.total_ns, 100);
  EXPECT_DOUBLE_EQ(path.ServiceShare(3), 0.7);
}

TEST(CriticalPath, ExclusiveTimesTelescopeToTotal) {
  // Three-level chain with siblings at each level.
  auto tree = Build({
      Rec("1", 0, 1), Rec("1", 200, 1),
      Rec("1-1", 10, 2), Rec("1-1", 180, 2),
      Rec("1-2", 5, 9), Rec("1-2", 50, 9),
      Rec("1-1-1", 20, 3), Rec("1-1-1", 170, 3),
  });
  auto path = ComputeCriticalPath(tree);
  ASSERT_EQ(path.steps.size(), 3u);
  EventTime sum = 0;
  for (const auto& s : path.steps) {
    sum += s.exclusive_ns;
  }
  EXPECT_EQ(sum, path.total_ns);
  EXPECT_EQ(path.total_ns, 200);
}

TEST(CriticalPath, InferredNodesTraversedWithZeroCharge) {
  // Only the grandchild was observed: root and middle are inferred, with the
  // grandchild's extent as their effective interval.
  auto tree = Build({Rec("1-3-2", 40, 7), Rec("1-3-2", 90, 7)});
  auto path = ComputeCriticalPath(tree);
  ASSERT_EQ(path.steps.size(), 3u);
  EXPECT_EQ(path.steps[0].exclusive_ns, 0);  // Inferred root.
  EXPECT_EQ(path.steps[1].exclusive_ns, 0);  // Inferred middle.
  EXPECT_EQ(path.steps[2].exclusive_ns, 50);
  EXPECT_EQ(path.total_ns, 50);
}

TEST(CriticalPath, SkewedChildDoesNotProduceNegativeCharges) {
  // Child appears to start before and end after its parent (clock skew).
  auto tree = Build({
      Rec("1", 50, 1), Rec("1", 100, 1),
      Rec("1-1", 40, 2), Rec("1-1", 120, 2),
  });
  auto path = ComputeCriticalPath(tree);
  ASSERT_EQ(path.steps.size(), 2u);
  EXPECT_GE(path.steps[0].exclusive_ns, 0);
  EXPECT_GE(path.steps[1].exclusive_ns, 0);
}

}  // namespace
}  // namespace ts
