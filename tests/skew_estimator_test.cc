// Tests for the clock-skew estimator (§2.3 extension): recovering injected
// per-host offsets from parent-child span-start observations.
#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/skew_estimator.h"
#include "src/core/trace_tree.h"
#include "src/offline/offline_sessionizer.h"
#include "src/workload/generator.h"

namespace ts {
namespace {

TEST(SkewEstimator, PairwiseMinConvergesToOffsetDelta) {
  ClockSkewEstimator estimator;
  // True offsets: host 0 -> 0, host 1 -> +5ms. Child on host 1, parent on
  // host 0: observed delta = true latency (>=0) + 5ms.
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const int64_t latency = static_cast<int64_t>(rng.NextBelow(2'000'000));
    estimator.ObservePair(0, 1, latency + 5'000'000);
  }
  auto offsets = estimator.EstimateOffsets();
  ASSERT_EQ(offsets.size(), 2u);
  EXPECT_EQ(offsets.at(0), 0);
  // Min latency over 500 draws is close to 0 -> estimate close to 5ms.
  EXPECT_NEAR(static_cast<double>(offsets.at(1)), 5e6, 1e5);
}

TEST(SkewEstimator, PropagatesThroughConstraintGraph) {
  ClockSkewEstimator estimator;
  // Chain: 0 -> 1 (+2ms), 1 -> 2 (-3ms). No direct 0 -> 2 observations.
  estimator.ObservePair(0, 1, 2'000'000);
  estimator.ObservePair(1, 2, -3'000'000);
  auto offsets = estimator.EstimateOffsets();
  EXPECT_EQ(offsets.at(0), 0);
  EXPECT_EQ(offsets.at(1), 2'000'000);
  EXPECT_EQ(offsets.at(2), -1'000'000);
}

TEST(SkewEstimator, SameHostObservationsAreIgnored) {
  ClockSkewEstimator estimator;
  estimator.ObservePair(3, 3, 1'000'000);
  EXPECT_EQ(estimator.observations(), 0u);
  EXPECT_TRUE(estimator.EstimateOffsets().empty());
}

TEST(SkewEstimator, CorrectRecordSubtractsOffset) {
  std::unordered_map<uint32_t, int64_t> offsets = {{7, 5'000}};
  LogRecord r;
  r.host = 7;
  r.time = 10'000;
  ClockSkewEstimator::CorrectRecord(offsets, &r);
  EXPECT_EQ(r.time, 5'000);
  LogRecord unknown;
  unknown.host = 9;
  unknown.time = 10'000;
  ClockSkewEstimator::CorrectRecord(offsets, &unknown);
  EXPECT_EQ(unknown.time, 10'000);  // No estimate: untouched.
}

// Ground truth: estimated offsets must track the generator's injected skew
// (up to a per-component constant) far more tightly than the skew magnitude.
TEST(SkewEstimator, ResidualErrorWellBelowInjectedSkew) {
  GeneratorConfig config;
  config.seed = 3;
  config.duration_ns = 10 * kNanosPerSecond;
  config.target_records_per_sec = 8'000;
  config.clock_skew_sigma_ns = 3 * kNanosPerMilli;
  TraceGenerator gen(config);
  std::vector<LogRecord> all;
  Epoch epoch;
  std::vector<LogRecord> batch;
  while (gen.NextEpoch(&epoch, &batch)) {
    for (auto& r : batch) {
      all.push_back(std::move(r));
    }
  }
  const auto& truth = gen.host_skew();

  ClockSkewEstimator estimator;
  for (const auto& s : OfflineSessionizer::Sessionize(all)) {
    for (const auto& tree : TraceTree::FromSession(s)) {
      estimator.ObserveTree(tree);
    }
  }
  auto offsets = estimator.EstimateOffsets();
  ASSERT_GT(offsets.size(), 50u);

  // Gauge freedom: compare up to the mean difference.
  double mean_diff = 0;
  for (const auto& [host, offset] : offsets) {
    mean_diff += static_cast<double>(offset - truth[host]);
  }
  mean_diff /= static_cast<double>(offsets.size());
  double rms = 0;
  for (const auto& [host, offset] : offsets) {
    const double r = static_cast<double>(offset - truth[host]) - mean_diff;
    rms += r * r;
  }
  rms = std::sqrt(rms / static_cast<double>(offsets.size()));
  // Residual error at least ~5x below the injected 3ms skew.
  EXPECT_LT(rms, 0.6e6) << "rms residual " << rms / 1e6 << " ms";
}

// End-to-end: inject per-host skew in the generator, reconstruct trees,
// estimate offsets, and verify the correction removes most causality
// anomalies.
TEST(SkewEstimator, RecoversInjectedSkewFromGeneratedTrace) {
  GeneratorConfig config;
  config.seed = 3;
  config.duration_ns = 10 * kNanosPerSecond;
  config.target_records_per_sec = 8'000;
  config.clock_skew_sigma_ns = 3 * kNanosPerMilli;
  TraceGenerator gen(config);
  std::vector<LogRecord> all;
  Epoch epoch;
  std::vector<LogRecord> batch;
  while (gen.NextEpoch(&epoch, &batch)) {
    for (auto& r : batch) {
      all.push_back(std::move(r));
    }
  }

  auto CountAnomalies = [](const std::vector<LogRecord>& records) {
    auto sessions = OfflineSessionizer::Sessionize(records);
    size_t anomalies = 0;
    size_t cross_host_edges = 0;
    ClockSkewEstimator est;
    for (const auto& s : sessions) {
      for (const auto& tree : TraceTree::FromSession(s)) {
        est.ObserveTree(tree);
        for (const auto& n : tree.nodes()) {
          if (n.parent < 0 || n.inferred || tree.nodes()[n.parent].inferred) {
            continue;
          }
          if (n.host != tree.nodes()[n.parent].host) {
            ++cross_host_edges;
            if (n.start < tree.nodes()[n.parent].start) {
              ++anomalies;
            }
          }
        }
      }
    }
    return std::make_tuple(anomalies, cross_host_edges, est);
  };

  auto [before, edges, estimator] = CountAnomalies(all);
  ASSERT_GT(edges, 1'000u);
  ASSERT_GT(before, 0u) << "skew injection should cause causality anomalies";

  // Correct all records with the estimated offsets and re-measure.
  auto offsets = estimator.EstimateOffsets();
  ASSERT_GT(offsets.size(), 10u);
  std::vector<LogRecord> corrected = all;
  for (auto& r : corrected) {
    ClockSkewEstimator::CorrectRecord(offsets, &r);
  }
  auto [after, edges2, est2] = CountAnomalies(corrected);
  (void)edges2;
  (void)est2;
  // The estimator is anchored per connected component, so residual anomalies
  // can remain, but the bulk must be gone.
  EXPECT_LT(after, before / 4)
      << "correction should remove most causality anomalies (before=" << before
      << ")";
}

}  // namespace
}  // namespace ts
