// Loopback integration tests for the ts_query serving subsystem.
//
// The acceptance contract: sessions queried over the wire protocol are
// byte-equivalent to the same sessions read from the SessionStore
// in-process (the server's serialization IS EncodeSessionBlock), SUBSCRIBE
// delivers every session closed after the subscriber attaches, and a slow
// subscriber costs the server a bounded buffer with exact #DROPPED
// accounting.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/analytics/session_store.h"
#include "src/log/wire_format.h"
#include "src/query/query_client.h"
#include "src/query/query_protocol.h"
#include "src/query/query_server.h"

namespace ts {
namespace {

Session MakeSession(const std::string& id, EventTime start_ns,
                    EventTime end_ns, std::vector<uint32_t> services,
                    uint32_t fragment = 0, size_t payload_bytes = 8) {
  Session s;
  s.id = id;
  s.fragment_index = fragment;
  EventTime t = start_ns;
  const EventTime step =
      services.empty()
          ? 0
          : (end_ns - start_ns) / static_cast<EventTime>(services.size() + 1);
  for (uint32_t svc : services) {
    LogRecord r;
    r.time = t;
    r.session_id = id;
    r.txn_id = *TxnId::Parse("1-2");
    r.service = svc;
    r.host = svc;
    r.kind = EventKind::kAnnotation;
    r.payload = "x=" + std::string(payload_bytes, 'a');
    s.records.push_back(std::move(r));
    t += step;
  }
  if (s.records.size() >= 2) {
    s.records.back().time = end_ns;  // Extent reaches end_ns exactly.
  }
  s.first_epoch = static_cast<Epoch>(start_ns / kNanosPerSecond);
  s.last_epoch = static_cast<Epoch>(end_ns / kNanosPerSecond);
  s.closed_at = s.last_epoch;
  return s;
}

// Server + run thread, torn down in reverse order.
class ServerFixture {
 public:
  explicit ServerFixture(QueryServerOptions options = {},
                         SessionStore::Options store_options = {}) {
    store = std::make_shared<SessionStore>(store_options);
    metrics = std::make_shared<MetricsRegistry>();
    server = std::make_unique<QueryServer>(options, store, metrics);
    EXPECT_TRUE(server->Start());
    thread = std::thread([this] { server->Run(); });
  }
  ~ServerFixture() {
    server->Stop();
    thread.join();
  }

  QueryClient Client(int sock_buf_bytes = 0) {
    QueryClientOptions options;
    options.port = server->port();
    options.sock_buf_bytes = sock_buf_bytes;
    QueryClient client(options);
    EXPECT_TRUE(client.Connect());
    return client;
  }

  std::shared_ptr<SessionStore> store;
  std::shared_ptr<MetricsRegistry> metrics;
  std::unique_ptr<QueryServer> server;
  std::thread thread;
};

// Raw blocking socket for byte-level assertions (no client-side decoding).
class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  }
  ~RawConn() { ::close(fd_); }

  // Sends one request and returns the exact response bytes, through the
  // terminating "#OK ...\n" / "#ERR ...\n" line.
  std::string Request(const std::string& line) {
    const std::string out = line + "\n";
    EXPECT_EQ(::send(fd_, out.data(), out.size(), 0),
              static_cast<ssize_t>(out.size()));
    std::string response;
    char buf[4096];
    while (!Terminated(response)) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) {
        ADD_FAILURE() << "connection lost mid-response";
        break;
      }
      response.append(buf, static_cast<size_t>(n));
    }
    return response;
  }

 private:
  // The terminator is always the final line; record lines start with a
  // decimal timestamp so they can never alias '#'-prefixed control lines.
  static bool Terminated(const std::string& response) {
    if (response.empty() || response.back() != '\n') {
      return false;
    }
    const size_t prev = response.rfind('\n', response.size() - 2);
    const size_t start = prev == std::string::npos ? 0 : prev + 1;
    return response.compare(start, 4, "#OK ") == 0 ||
           response.compare(start, 5, "#ERR ") == 0;
  }

  int fd_ = -1;
};

TEST(QueryServerWire, GetIsByteEquivalentToInProcessRead) {
  ServerFixture fixture;
  fixture.store->Insert(MakeSession("ALPHA", 0, kNanosPerSecond, {1, 2, 3}));
  fixture.store->Insert(MakeSession("BETA", 0, kNanosPerSecond, {4}));

  RawConn conn(fixture.server->port());
  const auto in_process = fixture.store->GetById("ALPHA", 0);
  ASSERT_TRUE(in_process.has_value());
  EXPECT_EQ(conn.Request("GET ALPHA 0"),
            EncodeSessionBlock(*in_process) + FormatOk(1) + "\n");
  EXPECT_EQ(conn.Request("GET MISSING"), FormatOk(0) + "\n");
}

TEST(QueryServerWire, FragmentsAndRangeAreByteEquivalentAndOrdered) {
  ServerFixture fixture;
  fixture.store->Insert(MakeSession("S", 0, kNanosPerSecond, {1}, 0));
  fixture.store->Insert(MakeSession("S", 2 * kNanosPerSecond,
                                    3 * kNanosPerSecond, {2}, 1));
  fixture.store->Insert(MakeSession("T", kNanosPerSecond / 2,
                                    2 * kNanosPerSecond, {3}));

  RawConn conn(fixture.server->port());
  std::string expected;
  for (const auto& s : fixture.store->GetAllFragments("S")) {
    AppendSessionBlock(s, &expected);
  }
  EXPECT_EQ(conn.Request("FRAGMENTS S"), expected + FormatOk(2) + "\n");

  // RANGE results ordered by start time, [lo, hi) intersect semantics.
  expected.clear();
  const auto in_range =
      fixture.store->QueryByTimeRange(0, 2 * kNanosPerSecond, 100);
  ASSERT_EQ(in_range.size(), 2u);
  EXPECT_EQ(in_range[0].id, "S");  // Starts at 0.
  EXPECT_EQ(in_range[1].id, "T");
  for (const auto& s : in_range) {
    AppendSessionBlock(s, &expected);
  }
  EXPECT_EQ(conn.Request("RANGE 0 2000000000 100"),
            expected + FormatOk(2) + "\n");
}

TEST(QueryServerClient, QueriesStatsAndTopK) {
  ServerFixture fixture;
  fixture.store->Insert(MakeSession("A", 0, kNanosPerSecond, {1, 2}));
  fixture.store->Insert(MakeSession("B", 0, kNanosPerSecond, {2}));
  fixture.metrics->Register("custom_gauge", [] { return int64_t{41}; });

  auto client = fixture.Client();
  auto get = client.Get("A");
  EXPECT_TRUE(get.ok);
  ASSERT_EQ(get.sessions.size(), 1u);
  EXPECT_EQ(get.sessions[0].id, "A");
  EXPECT_EQ(EncodeSessionBlock(get.sessions[0]),
            EncodeSessionBlock(*fixture.store->GetById("A")));

  auto by_service = client.ByService(2, 10);
  EXPECT_TRUE(by_service.ok);
  EXPECT_EQ(by_service.count, 2u);
  ASSERT_EQ(by_service.sessions.size(), 2u);
  EXPECT_EQ(by_service.sessions[0].id, "B");  // Newest first.

  auto stats = client.Stats();
  EXPECT_TRUE(stats.ok);
  bool saw_sessions = false;
  bool saw_custom = false;
  for (const auto& [name, value] : stats.stats) {
    if (name == "store_sessions") {
      saw_sessions = true;
      EXPECT_EQ(value, 2);
    }
    if (name == "custom_gauge") {
      saw_custom = true;
      EXPECT_EQ(value, 41);
    }
  }
  EXPECT_TRUE(saw_sessions);
  EXPECT_TRUE(saw_custom);

  auto top = client.TopK(1);
  EXPECT_TRUE(top.ok);
  ASSERT_EQ(top.top.size(), 1u);
  EXPECT_EQ(top.top[0].first, 2u);  // svc-2 touches both sessions.
  EXPECT_EQ(top.top[0].second, 2u);

  QueryResponse bad;
  ASSERT_TRUE(client.Execute("NOPE", &bad));
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.error.empty());
  const auto counters = fixture.server->counters();
  EXPECT_GE(counters.queries, 5u);
  EXPECT_GE(counters.errors, 1u);
}

TEST(TemplateQuery, TemplatesVerbServesRankedDictionary) {
  // A server with a template source answers TEMPLATES with TMPL lines ranked
  // by hits (descending, id ascending on ties), k-limited, text verbatim.
  auto store = std::make_shared<SessionStore>(SessionStore::Options{});
  auto metrics = std::make_shared<MetricsRegistry>();
  auto server =
      std::make_unique<QueryServer>(QueryServerOptions{}, store, metrics);
  server->SetTemplateSource([] {
    return std::vector<TemplateCount>{
        {1, 10, 100000, "alpha <*>"},
        {2, 50, 500000, "beta <*> gamma"},
        {3, 10, 100000, "delta"},
    };
  });
  ASSERT_TRUE(server->Start());
  std::thread thread([&server] { server->Run(); });
  {
    RawConn conn(server->port());
    EXPECT_EQ(conn.Request("TEMPLATES 2"),
              "TMPL 2 50 500000 beta <*> gamma\nTMPL 1 10 100000 alpha <*>\n" +
                  FormatOk(2) + "\n");

    QueryClientOptions options;
    options.port = server->port();
    QueryClient client(options);
    ASSERT_TRUE(client.Connect());
    auto response = client.Templates(10);
    EXPECT_TRUE(response.ok);
    EXPECT_EQ(response.count, 3u);
    ASSERT_EQ(response.templates.size(), 3u);
    EXPECT_EQ(response.templates[0].id, 2u);
    EXPECT_EQ(response.templates[1].id, 1u);  // Tie broken by id.
    EXPECT_EQ(response.templates[2].id, 3u);
    EXPECT_EQ(response.templates[0].text, "beta <*> gamma");
  }
  server->Stop();
  thread.join();
}

TEST(TemplateQuery, TemplatesVerbWithoutSourceIsAnError) {
  ServerFixture fixture;  // No SetTemplateSource: mining disabled.
  auto client = fixture.Client();
  auto response = client.Templates();
  EXPECT_FALSE(response.ok);
  EXPECT_NE(response.error.find("template mining disabled"),
            std::string::npos);
}

TEST(QueryServerSubscribe, DeliversEverySessionClosedAfterAttach) {
  ServerFixture fixture;
  fixture.store->Insert(MakeSession("BEFORE", 0, kNanosPerSecond, {9}));

  auto client = fixture.Client();
  ASSERT_TRUE(client.Subscribe());

  constexpr size_t kSessions = 50;
  std::thread inserter([&] {
    for (size_t i = 0; i < kSessions; ++i) {
      fixture.store->Insert(MakeSession(
          "LIVE" + std::to_string(i),
          static_cast<EventTime>(i) * kNanosPerMilli,
          static_cast<EventTime>(i + 1) * kNanosPerMilli, {1, 2}));
    }
  });

  std::set<std::string> received;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (received.size() < kSessions &&
         std::chrono::steady_clock::now() < deadline) {
    Session session;
    uint64_t dropped = 0;
    const auto event = client.Next(&session, &dropped, /*timeout_ms=*/500);
    if (event == QueryClient::Event::kSession) {
      // Byte-for-byte the same session an in-process reader gets.
      const auto in_process =
          fixture.store->GetById(session.id, session.fragment_index);
      ASSERT_TRUE(in_process.has_value());
      EXPECT_EQ(EncodeSessionBlock(session), EncodeSessionBlock(*in_process));
      received.insert(session.id);
    } else {
      ASSERT_NE(event, QueryClient::Event::kError);
      ASSERT_NE(event, QueryClient::Event::kClosed);
    }
  }
  inserter.join();
  EXPECT_EQ(received.size(), static_cast<size_t>(kSessions));
  EXPECT_EQ(received.count("BEFORE"), 0u);  // Closed before attach.
  EXPECT_EQ(client.total_dropped(), 0u);
  const auto counters = fixture.server->counters();
  EXPECT_EQ(counters.sessions_streamed, static_cast<uint64_t>(kSessions));
  EXPECT_EQ(counters.sessions_dropped, 0u);
  EXPECT_EQ(counters.subscribers_attached, 1u);
}

TEST(QueryServerSubscribe, ServiceFilterSelectsMatchingSessionsOnly) {
  ServerFixture fixture;
  auto client = fixture.Client();
  ASSERT_TRUE(client.Subscribe(/*filter_service=*/7));

  fixture.store->Insert(MakeSession("HIT1", 0, kNanosPerMilli, {6, 7}));
  fixture.store->Insert(MakeSession("MISS", 0, kNanosPerMilli, {8}));
  fixture.store->Insert(MakeSession("HIT2", 0, kNanosPerMilli, {7}));

  std::set<std::string> received;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (received.size() < 2 && std::chrono::steady_clock::now() < deadline) {
    Session session;
    if (client.Next(&session, nullptr, 200) == QueryClient::Event::kSession) {
      received.insert(session.id);
    }
  }
  EXPECT_EQ(received, (std::set<std::string>{"HIT1", "HIT2"}));
  // The non-matching session must never arrive: one more poll stays quiet.
  Session session;
  EXPECT_EQ(client.Next(&session, nullptr, 200),
            QueryClient::Event::kTimeout);
}

TEST(QueryServerSubscribe, SlowSubscriberIsBoundedWithExactDropAccounting) {
  QueryServerOptions options;
  options.max_conn_buffer_bytes = 8 << 10;  // Tiny: force drops quickly.
  // Pin the socket buffers too: without this the kernel's auto-tuned TCP
  // buffers (multi-megabyte on this host) can swallow the whole burst and no
  // drop ever happens — the bound under test must be the application's.
  options.conn_sock_buf_bytes = 16 << 10;
  ServerFixture fixture(options);

  auto client = fixture.Client(/*sock_buf_bytes=*/16 << 10);
  ASSERT_TRUE(client.Subscribe());

  // Insert far more session bytes than the subscriber's budget while the
  // client is NOT reading. Each block is ~1 KiB.
  constexpr uint64_t kSessions = 200;
  for (uint64_t i = 0; i < kSessions; ++i) {
    fixture.store->Insert(MakeSession("BULK" + std::to_string(i), 0,
                                      kNanosPerMilli, {1, 2, 3}, 0,
                                      /*payload_bytes=*/100));
  }

  // Every insert is accounted exactly once: streamed into the bounded buffer
  // or dropped. Wait until the fan-out settles.
  QueryServerCounters counters;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  do {
    counters = fixture.server->counters();
    if (counters.sessions_streamed + counters.sessions_dropped >= kSessions) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  } while (std::chrono::steady_clock::now() < deadline);
  EXPECT_EQ(counters.sessions_streamed + counters.sessions_dropped,
            static_cast<uint64_t>(kSessions));
  EXPECT_GT(counters.sessions_dropped, 0u);  // The budget really was tiny.

  // Now drain: the subscriber gets every streamed session plus #DROPPED
  // notices that account for every discarded one. Timeouts are retried
  // against a global deadline — under a loaded ctest run a single quiet
  // 2s window is load jitter, not a verdict.
  uint64_t received = 0;
  const auto drain_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (received + client.total_dropped() < kSessions &&
         std::chrono::steady_clock::now() < drain_deadline) {
    Session session;
    uint64_t dropped = 0;
    const auto event = client.Next(&session, &dropped, /*timeout_ms=*/500);
    if (event == QueryClient::Event::kSession) {
      ++received;
    } else if (event == QueryClient::Event::kError ||
               event == QueryClient::Event::kClosed) {
      break;
    }
  }
  EXPECT_EQ(received, counters.sessions_streamed);
  EXPECT_EQ(client.total_dropped(), counters.sessions_dropped);
  EXPECT_EQ(received + client.total_dropped(),
            static_cast<uint64_t>(kSessions));
}

// One slow-consumer scenario: sessions are inserted in bursts while the
// subscriber stalls and reads according to `schedule`; afterwards the drain
// must recover every streamed session and a #DROPPED notice for every
// discarded one — exact accounting, whatever the stall pattern.
struct StallSchedule {
  const char* name;
  int rounds;          // Insert bursts.
  int per_burst;       // Sessions inserted per burst (~1.3 KiB each).
  int stall_ms;        // Consumer sleep after each burst.
  int reads_per_round; // Events the consumer takes between bursts.
};

void RunStallSchedule(const StallSchedule& schedule) {
  SCOPED_TRACE(schedule.name);
  QueryServerOptions options;
  options.max_conn_buffer_bytes = 8 << 10;  // Tiny: stalls must cost drops.
  options.conn_sock_buf_bytes = 16 << 10;   // Defeat kernel buffer auto-tuning.
  ServerFixture fixture(options);
  auto client = fixture.Client(/*sock_buf_bytes=*/16 << 10);
  ASSERT_TRUE(client.Subscribe());

  const uint64_t total =
      static_cast<uint64_t>(schedule.rounds) * schedule.per_burst;
  uint64_t received = 0;
  uint64_t inserted = 0;
  for (int round = 0; round < schedule.rounds; ++round) {
    for (int i = 0; i < schedule.per_burst; ++i) {
      fixture.store->Insert(MakeSession("S" + std::to_string(inserted++), 0,
                                        kNanosPerMilli, {1, 2, 3}, 0,
                                        /*payload_bytes=*/100));
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(schedule.stall_ms));
    for (int r = 0; r < schedule.reads_per_round;) {
      Session session;
      uint64_t dropped = 0;
      const auto event = client.Next(&session, &dropped, /*timeout_ms=*/50);
      if (event == QueryClient::Event::kSession) {
        ++received;
        ++r;
      } else if (event == QueryClient::Event::kTimeout) {
        break;  // Buffer already drained below the read budget.
      } else {
        ASSERT_EQ(event, QueryClient::Event::kDropped);
      }
    }
  }

  // Let the fan-out settle: every insert is accounted exactly once, streamed
  // into the bounded buffer or dropped.
  QueryServerCounters counters;
  const auto settle_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  do {
    counters = fixture.server->counters();
    if (counters.sessions_streamed + counters.sessions_dropped >= total) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  } while (std::chrono::steady_clock::now() < settle_deadline);
  ASSERT_EQ(counters.sessions_streamed + counters.sessions_dropped, total);
  EXPECT_GT(counters.sessions_dropped, 0u);   // The stall really cost drops.
  EXPECT_GT(counters.sessions_streamed, 0u);  // But the stream kept flowing.

  // Drain the rest with a global deadline; isolated timeouts are retried.
  const auto drain_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (received + client.total_dropped() < total &&
         std::chrono::steady_clock::now() < drain_deadline) {
    Session session;
    uint64_t dropped = 0;
    const auto event = client.Next(&session, &dropped, /*timeout_ms=*/500);
    if (event == QueryClient::Event::kSession) {
      ++received;
    } else if (event == QueryClient::Event::kError ||
               event == QueryClient::Event::kClosed) {
      break;
    }
  }
  EXPECT_EQ(received, counters.sessions_streamed);
  EXPECT_EQ(client.total_dropped(), counters.sessions_dropped);
  EXPECT_EQ(received + client.total_dropped(), total);
}

TEST(QueryServerSubscribe, DropAccountingUnderSingleLongStall) {
  RunStallSchedule({"one long stall, no reads until the drain",
                    /*rounds=*/1, /*per_burst=*/240, /*stall_ms=*/50,
                    /*reads_per_round=*/0});
}

TEST(QueryServerSubscribe, DropAccountingUnderInterleavedShortStalls) {
  RunStallSchedule({"six bursts with short stalls and partial reads",
                    /*rounds=*/6, /*per_burst=*/40, /*stall_ms=*/10,
                    /*reads_per_round=*/10});
}

TEST(QueryServerSubscribe, DropAccountingUnderSlowDripReader) {
  RunStallSchedule({"big bursts, a reader that takes one event per round",
                    /*rounds=*/3, /*per_burst=*/80, /*stall_ms=*/5,
                    /*reads_per_round=*/1});
}

TEST(QueryServerWire, OversizedMultiSessionResponseIsTruncated) {
  QueryServerOptions options;
  options.max_conn_buffer_bytes = 4 << 10;
  ServerFixture fixture(options);
  for (int i = 0; i < 50; ++i) {
    fixture.store->Insert(MakeSession("T" + std::to_string(i), 0,
                                      kNanosPerMilli, {5}, 0,
                                      /*payload_bytes=*/200));
  }
  auto client = fixture.Client();
  auto response = client.ByService(5, 1000);
  EXPECT_TRUE(response.ok);
  EXPECT_TRUE(response.truncated);
  EXPECT_EQ(response.sessions.size(), response.count);
  EXPECT_LT(response.count, 50u);
  EXPECT_GE(response.count, 1u);  // A response always makes progress.
}

TEST(QueryServerSubscribe, RequestAfterSubscribeIsRejected) {
  ServerFixture fixture;
  auto client = fixture.Client();
  ASSERT_TRUE(client.Subscribe());
  // The protocol forbids further requests on a subscribed connection.
  QueryResponse response;
  ASSERT_TRUE(client.Execute("STATS", &response));
  EXPECT_FALSE(response.ok);
  EXPECT_FALSE(response.error.empty());
}

}  // namespace
}  // namespace ts
