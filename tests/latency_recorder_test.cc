// LatencyRecorder: the log-bucketed histogram behind ts_loadgen's
// coordinated-omission-safe percentiles. The load-bearing properties are the
// golden bucket geometry (exact below 2^(bits+1), bounded relative error
// above), lock-free mergeability of per-thread recorders, and the documented
// quantile error bound of 2^-sub_bucket_bits.
#include "src/common/latency_recorder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace ts {
namespace {

TEST(LatencyRecorderTest, GoldenBucketBoundaries) {
  LatencyRecorder r(/*sub_bucket_bits=*/5);  // 32 sub-buckets.
  // Exact region: every value below 2 * 32 = 64 is its own bucket.
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{33}, int64_t{63}}) {
    EXPECT_EQ(r.BucketIndex(v), static_cast<size_t>(v)) << v;
    EXPECT_EQ(r.BucketLowerBound(r.BucketIndex(v)), v);
    EXPECT_EQ(r.BucketUpperBound(r.BucketIndex(v)), v);
  }
  // First log row: 64..127 in 32 sub-buckets of width 2.
  EXPECT_EQ(r.BucketIndex(64), 64u);
  EXPECT_EQ(r.BucketIndex(65), 64u);  // Same width-2 bucket as 64.
  EXPECT_EQ(r.BucketIndex(66), 65u);
  EXPECT_EQ(r.BucketIndex(127), 95u);
  EXPECT_EQ(r.BucketLowerBound(64), 64);
  EXPECT_EQ(r.BucketUpperBound(64), 65);
  EXPECT_EQ(r.BucketUpperBound(95), 127);
  // Second log row: 128..255 in 32 sub-buckets of width 4.
  EXPECT_EQ(r.BucketIndex(128), 96u);
  EXPECT_EQ(r.BucketIndex(131), 96u);
  EXPECT_EQ(r.BucketIndex(132), 97u);
  EXPECT_EQ(r.BucketLowerBound(96), 128);
  EXPECT_EQ(r.BucketUpperBound(96), 131);
  // Negative values clamp into bucket zero.
  EXPECT_EQ(r.BucketIndex(-5), 0u);
}

TEST(LatencyRecorderTest, BucketGeometryIsConsistentAcrossMagnitudes) {
  LatencyRecorder r(5);
  // Every probed value must land inside its own bucket's [lower, upper], and
  // the bucket width must respect the 2^-bits relative-error contract.
  for (int64_t v = 1; v > 0 && v < (int64_t{1} << 62); v = v * 3 + 7) {
    const size_t index = r.BucketIndex(v);
    const int64_t lo = r.BucketLowerBound(index);
    const int64_t hi = r.BucketUpperBound(index);
    ASSERT_LE(lo, v) << v;
    ASSERT_GE(hi, v) << v;
    ASSERT_LE(static_cast<double>(hi - lo), static_cast<double>(v) / 32.0 + 1)
        << v;
    // Adjacent buckets tile the axis with no gaps or overlaps.
    if (index > 0) {
      ASSERT_EQ(r.BucketUpperBound(index - 1) + 1, lo) << v;
    }
  }
}

TEST(LatencyRecorderTest, ExactStatsInLinearRegion) {
  LatencyRecorder r;
  for (int64_t v = 0; v < 64; ++v) {
    r.Record(v);
  }
  EXPECT_EQ(r.count(), 64u);
  EXPECT_EQ(r.min(), 0);
  EXPECT_EQ(r.max(), 63);
  EXPECT_DOUBLE_EQ(r.mean(), 31.5);
  EXPECT_EQ(r.ValueAtQuantile(0.5), 31);  // ceil(0.5 * 64) = 32nd value: 31.
  EXPECT_EQ(r.ValueAtQuantile(0.0), 0);
  EXPECT_EQ(r.ValueAtQuantile(1.0), 63);
}

TEST(LatencyRecorderTest, QuantileWithinDocumentedRelativeError) {
  LatencyRecorder r(5);
  std::vector<int64_t> values;
  uint64_t state = 0x9e3779b97f4a7c15ULL;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  // Latency-like distribution spanning ~5 decades (1us .. several seconds).
  for (int i = 0; i < 20000; ++i) {
    const int64_t v = static_cast<int64_t>(next() % 1'000'000) *
                      static_cast<int64_t>(1 + next() % 4096);
    values.push_back(v);
    r.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.25, 0.5, 0.9, 0.99, 0.999}) {
    const size_t rank =
        std::min(values.size() - 1,
                 static_cast<size_t>(q * static_cast<double>(values.size())));
    const double exact = static_cast<double>(values[rank]);
    const double approx = static_cast<double>(r.ValueAtQuantile(q));
    // 2^-5 relative error, plus one bucket of slack for the rank-rounding
    // difference between the sorted array and the histogram walk.
    EXPECT_NEAR(approx, exact, exact * (2.0 / 32.0) + 1) << "q=" << q;
  }
  EXPECT_EQ(r.ValueAtQuantile(1.0), values.back());
}

TEST(LatencyRecorderTest, MergeMatchesSingleRecorder) {
  LatencyRecorder a(5), b(5), combined(5);
  for (int64_t v = 1; v < 100000; v *= 3) {
    a.Record(v);
    combined.Record(v);
    b.Record(v * 2);
    combined.Record(v * 2);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.ValueAtQuantile(q), combined.ValueAtQuantile(q)) << q;
  }
}

TEST(LatencyRecorderTest, RecordManyAndNegativeClamp) {
  LatencyRecorder r;
  r.RecordMany(100, 10);
  r.Record(-50);  // Schedule jitter clamps to zero, still counted.
  EXPECT_EQ(r.count(), 11u);
  EXPECT_EQ(r.min(), 0);
  EXPECT_EQ(r.ValueAtQuantile(0.01), 0);
  EXPECT_GE(r.ValueAtQuantile(0.99), 100 * 31 / 32);
}

TEST(LatencyRecorderTest, EmptyAndReset) {
  LatencyRecorder r;
  EXPECT_EQ(r.count(), 0u);
  EXPECT_EQ(r.min(), 0);
  EXPECT_EQ(r.max(), 0);
  EXPECT_EQ(r.ValueAtQuantile(0.5), 0);
  r.Record(1234);
  r.Reset();
  EXPECT_EQ(r.count(), 0u);
  EXPECT_EQ(r.max(), 0);
}

TEST(LatencyRecorderTest, SummaryFormat) {
  LatencyRecorder r;
  for (int i = 0; i < 1000; ++i) {
    r.Record(int64_t{1} * 1000 * 1000 * (1 + i % 10));  // 1..10ms.
  }
  const std::string s = r.Summary();
  EXPECT_NE(s.find("p50="), std::string::npos) << s;
  EXPECT_NE(s.find("p99="), std::string::npos) << s;
  EXPECT_NE(s.find("p99.9="), std::string::npos) << s;
  EXPECT_NE(s.find("n=1000"), std::string::npos) << s;
}

}  // namespace
}  // namespace ts
