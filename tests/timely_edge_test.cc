// Edge cases for the dataflow engine: empty computations, sparse epochs,
// chained notifications, multiple inputs, and large single-epoch batches.
#include <atomic>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/timely/timely.h"

namespace ts {
namespace {

TEST(TimelyEdge, EmptyComputationTerminates) {
  for (size_t workers : {1u, 3u}) {
    Computation::Options options;
    options.workers = workers;
    auto result = Computation::Run(options, [&](Scope& scope) {
      auto [input, stream] = scope.NewInput<int>("ints");
      scope.Sink<int>(stream, "sink", [](Epoch, std::vector<int>&) {});
      auto in = std::make_shared<InputSession<int>>(input);
      scope.AddDriver([in]() -> DriverStatus {
        in->Close();
        return DriverStatus::kFinished;
      });
    });
    EXPECT_EQ(result.workers.size(), workers);
  }
}

TEST(TimelyEdge, SparseEpochJumpsDeliverNotificationsInOrder) {
  std::vector<Epoch> fired;
  Computation::Options options;
  options.workers = 1;
  Computation::Run(options, [&](Scope& scope) {
    auto [input, stream] = scope.NewInput<int>("ints");
    scope.Unary<int, Unit>(
        stream, Partition<int>::Pipeline(), "notify",
        [](Epoch e, std::vector<int>& data, OutputSession<Unit>&,
           NotificatorHandle& n) {
          n.NotifyAt(e);
          data.clear();
        },
        [&fired](Epoch e, OutputSession<Unit>&, NotificatorHandle&) {
          fired.push_back(e);
        });
    auto in = std::make_shared<InputSession<int>>(input);
    auto step = std::make_shared<int>(0);
    scope.AddDriver([in, step]() -> DriverStatus {
      switch ((*step)++) {
        case 0:
          in->Give(1);
          in->AdvanceTo(1'000);  // Jump over a thousand empty epochs.
          return DriverStatus::kWorked;
        case 1:
          in->Give(2);
          in->AdvanceTo(1'000'000);
          return DriverStatus::kWorked;
        case 2:
          in->Give(3);
          in->Close();
          return DriverStatus::kFinished;
      }
      return DriverStatus::kFinished;
    });
  });
  EXPECT_EQ(fired, (std::vector<Epoch>{0, 1'000, 1'000'000}));
}

TEST(TimelyEdge, NotificationHandlersCanFeedDownstreamNotifications) {
  // A emits on notify(e); B receives and requests its own notify(e); both
  // must fire for every epoch even though B's data only exists after A's
  // notification.
  std::vector<Epoch> b_fired;
  Computation::Options options;
  options.workers = 2;
  std::mutex mu;
  Computation::Run(options, [&](Scope& scope) {
    auto [input, stream] = scope.NewInput<int>("ints");
    auto a = scope.Unary<int, int>(
        stream, Partition<int>::Pipeline(), "a",
        [](Epoch e, std::vector<int>& data, OutputSession<int>&,
           NotificatorHandle& n) {
          if (!data.empty()) {
            n.NotifyAt(e);
          }
          data.clear();
        },
        [](Epoch e, OutputSession<int>& out, NotificatorHandle&) {
          out.Give(e, static_cast<int>(e));
        });
    scope.Unary<int, Unit>(
        a, Partition<int>::ByKey([](const int& v) { return static_cast<uint64_t>(v); }),
        "b",
        [](Epoch e, std::vector<int>& data, OutputSession<Unit>&,
           NotificatorHandle& n) {
          if (!data.empty()) {
            n.NotifyAt(e);
          }
          data.clear();
        },
        [&](Epoch e, OutputSession<Unit>&, NotificatorHandle&) {
          std::lock_guard<std::mutex> lock(mu);
          b_fired.push_back(e);
        });

    auto in = std::make_shared<InputSession<int>>(input);
    const size_t w = scope.worker_index();
    auto fed = std::make_shared<Epoch>(0);
    scope.AddDriver([in, fed, w]() -> DriverStatus {
      if (*fed == 4) {
        in->Close();
        return DriverStatus::kFinished;
      }
      if (w == 0) {
        in->Give(static_cast<int>(*fed));
      }
      in->AdvanceTo(++*fed);
      return DriverStatus::kWorked;
    });
  });
  // A's output for epoch e is routed to exactly one worker instance of B; that
  // instance fires once. A runs on worker 0 only (input fed there; pipeline
  // edge), so B fires once per epoch.
  std::sort(b_fired.begin(), b_fired.end());
  EXPECT_EQ(b_fired, (std::vector<Epoch>{0, 1, 2, 3}));
}

TEST(TimelyEdge, TwoInputsMergeWithConcat) {
  std::atomic<int> total{0};
  Computation::Options options;
  options.workers = 1;
  Computation::Run(options, [&](Scope& scope) {
    auto [input_a, stream_a] = scope.NewInput<int>("a");
    auto [input_b, stream_b] = scope.NewInput<int>("b");
    auto merged = scope.Concat<int>({stream_a, stream_b}, "merge");
    scope.Sink<int>(merged, "sum", [&total](Epoch, std::vector<int>& data) {
      for (int v : data) {
        total.fetch_add(v);
      }
    });
    auto a = std::make_shared<InputSession<int>>(input_a);
    auto b = std::make_shared<InputSession<int>>(input_b);
    auto step = std::make_shared<int>(0);
    scope.AddDriver([a, b, step]() -> DriverStatus {
      if ((*step)++ == 0) {
        a->Give(10);
        b->Give(32);
        a->Close();
        // B stays open one more epoch: the merged frontier must wait for it.
        b->AdvanceTo(3);
        return DriverStatus::kWorked;
      }
      b->Give(100);
      b->Close();
      return DriverStatus::kFinished;
    });
  });
  EXPECT_EQ(total.load(), 142);
}

TEST(TimelyEdge, LargeSingleEpochBatch) {
  constexpr int kRecords = 200'000;
  std::atomic<int64_t> sum{0};
  Computation::Options options;
  options.workers = 2;
  Computation::Run(options, [&](Scope& scope) {
    auto [input, stream] = scope.NewInput<int>("ints");
    auto shuffled = scope.Unary<int, int>(
        stream, Partition<int>::ByKey([](const int& v) { return static_cast<uint64_t>(v); }),
        "shuffle",
        [](Epoch e, std::vector<int>& data, OutputSession<int>& out,
           NotificatorHandle&) { out.GiveVec(e, std::move(data)); },
        [](Epoch, OutputSession<int>&, NotificatorHandle&) {});
    scope.Sink<int>(shuffled, "sum", [&sum](Epoch, std::vector<int>& data) {
      int64_t local = 0;
      for (int v : data) {
        local += v;
      }
      sum.fetch_add(local);
    });
    auto in = std::make_shared<InputSession<int>>(input);
    auto done = std::make_shared<bool>(false);
    const size_t w = scope.worker_index();
    scope.AddDriver([in, done, w]() -> DriverStatus {
      if (*done) {
        in->Close();
        return DriverStatus::kFinished;
      }
      if (w == 0) {
        std::vector<int> batch(kRecords);
        for (int i = 0; i < kRecords; ++i) {
          batch[i] = i;
        }
        in->GiveBatch(std::move(batch));
      }
      *done = true;
      return DriverStatus::kWorked;
    });
  });
  EXPECT_EQ(sum.load(), static_cast<int64_t>(kRecords) * (kRecords - 1) / 2);
}

}  // namespace
}  // namespace ts
