// ChaosProxy end-to-end tests: real TCP traffic between an unmodified
// LogServer and an unmodified SocketIngestSource, attacked from the middle.
// Kills and truncations sever the proxied connection at exact byte offsets;
// the client reconnects *to the proxy* and the resume protocol must still
// deliver the archive exactly once.
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/fault/chaos_proxy.h"
#include "src/fault/fault_plan.h"
#include "src/log/wire_format.h"
#include "src/net/log_server.h"
#include "src/net/socket_ingest.h"
#include "src/workload/generator.h"

namespace ts {
namespace {

std::shared_ptr<std::vector<std::string>> MakeArchive(double records_per_sec,
                                                      EventTime seconds) {
  GeneratorConfig config;
  config.seed = 99;
  config.duration_ns = seconds * kNanosPerSecond;
  config.target_records_per_sec = records_per_sec;
  TraceGenerator gen(config);
  auto lines = std::make_shared<std::vector<std::string>>();
  Epoch epoch = 0;
  std::vector<LogRecord> records;
  while (gen.NextEpoch(&epoch, &records)) {
    for (const auto& r : records) {
      lines->push_back(ToWireFormat(r));
    }
  }
  return lines;
}

uint64_t WireBytes(const std::vector<std::string>& lines) {
  uint64_t total = 0;
  for (const auto& l : lines) {
    total += l.size() + 1;
  }
  return total;
}

// Server + proxy, each on its own thread; joined and stopped on destruction.
class ProxiedStack {
 public:
  ProxiedStack(std::shared_ptr<const std::vector<std::string>> lines,
               FaultPlan plan)
      : server_(LogServerOptions{}, std::move(lines)) {
    started_ = server_.Start();
    if (!started_) {
      return;
    }
    server_thread_ = std::thread([this] { server_.Run(); });
    ChaosProxyOptions proxy_options;
    proxy_options.upstream_port = server_.port();
    proxy_options.plan = std::move(plan);
    proxy_ = std::make_unique<ChaosProxy>(proxy_options);
    started_ = proxy_->Start();
    if (started_) {
      proxy_thread_ = std::thread([this] { proxy_->Run(); });
    }
  }

  ~ProxiedStack() {
    if (proxy_ != nullptr) {
      proxy_->Stop();
    }
    server_.Stop();
    if (proxy_thread_.joinable()) {
      proxy_thread_.join();
    }
    if (server_thread_.joinable()) {
      server_thread_.join();
    }
  }

  bool started() const { return started_; }
  uint16_t port() const { return proxy_->port(); }
  const ChaosProxy& proxy() const { return *proxy_; }
  const LogServer& server() const { return server_; }

 private:
  LogServer server_;
  std::unique_ptr<ChaosProxy> proxy_;
  std::thread server_thread_;
  std::thread proxy_thread_;
  bool started_ = false;
};

SocketIngestOptions ClientOptions(uint16_t port) {
  SocketIngestOptions options;
  options.port = port;
  options.backoff_base_ms = 1;
  options.backoff_max_ms = 50;
  return options;
}

TEST(ChaosProxy, TransparentWithEmptyPlan) {
  auto archive = MakeArchive(2'000, 1);
  ProxiedStack stack(archive, FaultPlan{});
  ASSERT_TRUE(stack.started());

  SocketIngestSource client(ClientOptions(stack.port()));
  std::vector<std::string> received;
  ASSERT_TRUE(client.ReadAll(&received));
  EXPECT_EQ(received, *archive);
  EXPECT_EQ(client.stats().Snapshot().reconnects, 0u);
  EXPECT_EQ(stack.proxy().stats().kills, 0u);
}

TEST(ChaosProxy, KillMidStreamResumesExactlyOnce) {
  auto archive = MakeArchive(3'000, 2);
  const uint64_t total = WireBytes(*archive);
  FaultPlan plan;
  plan.events.push_back({FaultType::kKill, total / 3, 0});
  plan.events.push_back({FaultType::kKill, (2 * total) / 3, 0});
  ProxiedStack stack(archive, plan);
  ASSERT_TRUE(stack.started());

  SocketIngestSource client(ClientOptions(stack.port()));
  std::vector<std::string> received;
  ASSERT_TRUE(client.ReadAll(&received));
  EXPECT_EQ(received, *archive);  // Exactly once through two severings.
  EXPECT_EQ(client.stats().Snapshot().reconnects, 2u);
  EXPECT_EQ(stack.proxy().stats().kills, 2u);
  EXPECT_GE(stack.server().stats().Snapshot().resumes, 2u);
}

TEST(ChaosProxy, TruncationDropsBytesThenSeversAndStillConverges) {
  auto archive = MakeArchive(2'000, 1);
  const uint64_t total = WireBytes(*archive);
  FaultPlan plan;
  plan.events.push_back({FaultType::kTruncate, total / 2, 64});
  ProxiedStack stack(archive, plan);
  ASSERT_TRUE(stack.started());

  SocketIngestSource client(ClientOptions(stack.port()));
  std::vector<std::string> received;
  ASSERT_TRUE(client.ReadAll(&received));
  // The dropped bytes never reached the client, so its resume offset points
  // at the first undelivered record and the retransmit closes the gap.
  EXPECT_EQ(received, *archive);
  EXPECT_EQ(stack.proxy().stats().kills, 1u);
  EXPECT_GE(stack.proxy().stats().bytes_dropped, 1u);
}

TEST(ChaosProxy, RefusalWindowDelaysButDoesNotLose) {
  auto archive = MakeArchive(1'000, 1);
  FaultPlan plan;
  plan.events.push_back({FaultType::kRefuse, 0, 2});
  ProxiedStack stack(archive, plan);
  ASSERT_TRUE(stack.started());

  SocketIngestSource client(ClientOptions(stack.port()));
  std::vector<std::string> received;
  ASSERT_TRUE(client.ReadAll(&received));
  EXPECT_EQ(received, *archive);
  EXPECT_EQ(stack.proxy().stats().refused, 2u);
}

TEST(ChaosProxy, CorruptionIsAccountedAndFramePreserving) {
  auto archive = MakeArchive(2'000, 1);
  const uint64_t total = WireBytes(*archive);
  FaultPlan plan;
  plan.events.push_back({FaultType::kCorrupt, total / 4, 16});
  ProxiedStack stack(archive, plan);
  ASSERT_TRUE(stack.started());

  SocketIngestSource client(ClientOptions(stack.port()));
  std::vector<std::string> received;
  ASSERT_TRUE(client.ReadAll(&received));
  EXPECT_EQ(stack.proxy().stats().bytes_corrupted, 16u);
  // Corruption may merge adjacent records (a flipped '\n') but can never
  // fabricate new ones, so the count is bounded both ways.
  EXPECT_LE(received.size(), archive->size());
  EXPECT_GE(received.size() + 16, archive->size());
  for (const auto& line : received) {
    EXPECT_EQ(line.find('\n'), std::string::npos);
  }
}

TEST(ChaosProxy, SeededPlanDrivesRealTrafficDeterministically) {
  auto archive = MakeArchive(2'000, 1);
  FaultProfile profile;
  ASSERT_TRUE(
      FaultPlan::ResolveProfile("mild", WireBytes(*archive), &profile));
  const FaultPlan plan = FaultPlan::FromSeed(11, "mild", profile);

  // Two identical stacks from one seed: byte-identical delivery either way.
  std::vector<std::string> first, second;
  {
    ProxiedStack stack(archive, plan);
    ASSERT_TRUE(stack.started());
    SocketIngestSource client(ClientOptions(stack.port()));
    ASSERT_TRUE(client.ReadAll(&first));
  }
  {
    ProxiedStack stack(archive, plan);
    ASSERT_TRUE(stack.started());
    SocketIngestSource client(ClientOptions(stack.port()));
    ASSERT_TRUE(client.ReadAll(&second));
  }
  EXPECT_EQ(first, *archive);
  EXPECT_EQ(second, *archive);
}

}  // namespace
}  // namespace ts
