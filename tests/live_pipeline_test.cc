// LivePipeline: the sharded live sessionization hot path. Covers the
// acceptance property (closed-session output is byte-identical for every
// worker count), blank-line/parse-failure accounting, fragment renumbering
// across shards, back-pressure, the merged watermark, metrics registration,
// and a multi-worker ingest stress intended for the TSan CI lane.
#include "src/core/live_pipeline.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/metrics_registry.h"
#include "src/log/wire_format.h"

namespace ts {
namespace {

constexpr EventTime kSec = kNanosPerSecond;

LogRecord Rec(const std::string& id, EventTime t, uint32_t service = 1) {
  LogRecord r;
  r.time = t;
  r.session_id = id;
  r.txn_id = *TxnId::Parse("1");
  r.service = service;
  r.host = service;
  r.kind = EventKind::kAnnotation;
  r.payload = "p";
  return r;
}

// A deterministic arrival stream: many interleaved sessions, mild
// out-of-order arrivals (within the inactivity slack), and idle gaps that
// force mid-stream fragment splits.
std::vector<std::string> MakeLines(size_t sessions, size_t rounds) {
  std::vector<std::string> lines;
  uint64_t state = 0x9e3779b97f4a7c15ULL;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (size_t round = 0; round < rounds; ++round) {
    // Rounds 0..2 are a burst, round 3 starts after a long idle gap so every
    // session splits into a second fragment.
    const EventTime base =
        static_cast<EventTime>(round) * kSec + (round >= 3 ? 60 * kSec : 0);
    for (size_t s = 0; s < sessions; ++s) {
      const std::string id = "SESS" + std::to_string(s);
      // Jitter keeps arrival order != event-time order within a round.
      const EventTime jitter = static_cast<EventTime>(next() % kNanosPerMilli);
      lines.push_back(ToWireFormat(
          Rec(id, base + jitter, static_cast<uint32_t>(s % 7))));
    }
  }
  return lines;
}

struct Collected {
  std::mutex mu;
  std::vector<Session> sessions;
  void Add(Session&& s) {
    std::lock_guard<std::mutex> lock(mu);
    sessions.push_back(std::move(s));
  }
};

std::string Canonical(const std::vector<Session>& sessions) {
  std::vector<std::string> blocks;
  for (const auto& s : sessions) {
    std::string b = s.id + "#" + std::to_string(s.fragment_index) + "@" +
                    std::to_string(s.first_epoch) + "-" +
                    std::to_string(s.last_epoch) + ":" +
                    std::to_string(s.closed_at);
    for (const auto& r : s.records) {
      b += "\n" + ToWireFormat(r);
    }
    blocks.push_back(std::move(b));
  }
  std::sort(blocks.begin(), blocks.end());
  std::string out;
  for (const auto& b : blocks) {
    out += b + "\n---\n";
  }
  return out;
}

std::string RunPipeline(const std::vector<std::string>& lines, size_t workers,
                        size_t flush_every = 64) {
  Collected collected;
  LivePipelineOptions options;
  options.workers = workers;
  options.inactivity_ns = 2 * kSec;
  LivePipeline pipeline(options,
                        [&](Session&& s) { collected.Add(std::move(s)); });
  size_t fed = 0;
  for (const auto& l : lines) {
    pipeline.FeedLine(l);
    if (++fed % flush_every == 0) {
      pipeline.Flush();
    }
  }
  pipeline.Finish();
  EXPECT_EQ(pipeline.records(), lines.size());
  EXPECT_EQ(pipeline.parse_failures(), 0u);
  EXPECT_EQ(pipeline.sessions_closed(), collected.sessions.size());
  return Canonical(collected.sessions);
}

TEST(LivePipelineTest, ByteIdenticalAcrossWorkerCounts) {
  const auto lines = MakeLines(/*sessions=*/37, /*rounds=*/5);
  const std::string one = RunPipeline(lines, 1);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, RunPipeline(lines, 2));
  EXPECT_EQ(one, RunPipeline(lines, 4));
  // Flush cadence must not change the output either.
  EXPECT_EQ(one, RunPipeline(lines, 4, /*flush_every=*/7));
}

TEST(LivePipelineTest, BlankLinesAreSkippedNotFailures) {
  Collected collected;
  LivePipelineOptions options;
  options.workers = 2;
  LivePipeline pipeline(options,
                        [&](Session&& s) { collected.Add(std::move(s)); });
  pipeline.FeedLine(ToWireFormat(Rec("S", kSec)));
  pipeline.FeedLine("");            // Blank.
  pipeline.FeedLine("\r\n");        // Blank after stripping.
  pipeline.FeedLine("not|a|record");  // Malformed: a real parse failure.
  pipeline.FeedLine("corrupt");       // No separators at all.
  pipeline.Finish();
  EXPECT_EQ(pipeline.records(), 1u);
  EXPECT_EQ(pipeline.blank_lines(), 2u);
  EXPECT_EQ(pipeline.parse_failures(), 2u);
  EXPECT_EQ(collected.sessions.size(), 1u);
}

TEST(LivePipelineTest, FragmentRenumberingAcrossShards) {
  const auto lines = MakeLines(/*sessions=*/23, /*rounds=*/5);
  Collected collected;
  LivePipelineOptions options;
  options.workers = 4;
  options.inactivity_ns = 2 * kSec;
  LivePipeline pipeline(options,
                        [&](Session&& s) { collected.Add(std::move(s)); });
  for (const auto& l : lines) {
    pipeline.FeedLine(l);
  }
  pipeline.Finish();

  // Every session split at the round-3 idle gap: each id must have fragments
  // numbered 0..k-1 exactly once, even though different ids live on
  // different shards.
  std::unordered_map<std::string, std::vector<uint32_t>> fragments;
  for (const auto& s : collected.sessions) {
    fragments[s.id].push_back(s.fragment_index);
  }
  EXPECT_EQ(fragments.size(), 23u);
  for (auto& [id, indices] : fragments) {
    std::sort(indices.begin(), indices.end());
    ASSERT_EQ(indices.size(), 2u) << id;
    EXPECT_EQ(indices[0], 0u) << id;
    EXPECT_EQ(indices[1], 1u) << id;
  }
}

TEST(LivePipelineTest, BackpressureStallsIngestAndDeliversEverything) {
  std::atomic<size_t> delivered{0};
  LivePipelineOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.max_batch_records = 1;
  options.inactivity_ns = kSec;
  LivePipeline pipeline(options, [&](Session&& s) {
    (void)s;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    delivered.fetch_add(1);
  });
  const size_t n = 256;
  for (size_t i = 0; i < n; ++i) {
    // Distinct sessions far apart in time: every record closes the previous
    // session, so the slow sink throttles the whole shard.
    pipeline.FeedLine(
        ToWireFormat(Rec("S" + std::to_string(i),
                         static_cast<EventTime>(i) * 10 * kSec)));
  }
  pipeline.Finish();
  EXPECT_EQ(pipeline.records(), n);
  EXPECT_EQ(delivered.load(), n);
  EXPECT_GT(pipeline.backpressure_stalls(), 0u);
}

TEST(LivePipelineTest, MergedWatermarkIsMinAcrossShards) {
  LivePipelineOptions options;
  options.workers = 4;
  LivePipeline pipeline(options, [](Session&&) {});
  EXPECT_EQ(pipeline.watermark(), 0);  // Nothing processed anywhere yet.
  pipeline.FeedRecord(Rec("A", 7 * kSec));
  pipeline.FeedRecord(Rec("B", 9 * kSec));
  EXPECT_EQ(pipeline.ingest_watermark(), 9 * kSec);
  pipeline.Finish();
  // Finish broadcasts the final watermark to every shard, so the merged
  // (min-across-shards) watermark converges to the ingest watermark.
  EXPECT_EQ(pipeline.watermark(), 9 * kSec);
}

TEST(LivePipelineTest, MetricsRegistrationExposesShardGauges) {
  MetricsRegistry registry;
  LivePipelineOptions options;
  options.workers = 2;
  LivePipeline pipeline(options, [](Session&&) {});
  pipeline.RegisterMetrics(&registry, "live_");
  pipeline.FeedRecord(Rec("A", kSec));
  pipeline.Finish();

  bool saw_records = false, saw_shard1_queue = false, saw_stalls = false;
  int64_t live_records = -1;
  for (const auto& [name, value] : registry.Snapshot()) {
    if (name == "live_records") {
      saw_records = true;
      live_records = value;
    }
    if (name == "live_shard1_queue_depth") {
      saw_shard1_queue = true;
    }
    if (name == "live_backpressure_stalls") {
      saw_stalls = true;
    }
  }
  EXPECT_TRUE(saw_records);
  EXPECT_TRUE(saw_shard1_queue);
  EXPECT_TRUE(saw_stalls);
  EXPECT_EQ(live_records, 1);
}

// Multi-worker ingest stress: 4 shard workers drain a fast producer while a
// reader thread hammers every cross-thread accessor. Run under TSan in CI
// (the tsan lane's -R filter matches "Stress").
TEST(LivePipelineTest, StressConcurrentIngestAndMetricsReads) {
  const auto lines = MakeLines(/*sessions=*/101, /*rounds=*/40);
  std::atomic<uint64_t> delivered{0};
  MetricsRegistry registry;
  LivePipelineOptions options;
  options.workers = 4;
  options.inactivity_ns = 2 * kSec;
  options.queue_capacity = 8;
  options.max_batch_records = 64;
  LivePipeline pipeline(options, [&](Session&& s) {
    delivered.fetch_add(1 + s.records.size(), std::memory_order_relaxed);
  });
  pipeline.RegisterMetrics(&registry);

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)registry.Snapshot();
      (void)pipeline.watermark();
      (void)pipeline.open_sessions();
      for (size_t i = 0; i < pipeline.workers(); ++i) {
        (void)pipeline.shard(i);
      }
    }
  });

  size_t fed = 0;
  for (const auto& l : lines) {
    pipeline.FeedLine(l);
    if (++fed % 97 == 0) {
      pipeline.Flush();
    }
  }
  pipeline.Finish();
  stop.store(true);
  reader.join();

  EXPECT_EQ(pipeline.records(), lines.size());
  EXPECT_EQ(pipeline.parse_failures(), 0u);
  EXPECT_GT(delivered.load(), 0u);
  // Conservation: every fed record ends up in exactly one closed session.
  uint64_t records_in_sessions = 0;
  for (size_t i = 0; i < pipeline.workers(); ++i) {
    records_in_sessions += pipeline.shard(i).records;
  }
  EXPECT_EQ(records_in_sessions, lines.size());
}

TEST(LivePipelineTest, OldestOpenShedBoundsStateAndReconcilesExactly) {
  // Sessions never close on their own (huge inactivity window), so each
  // shard's open bytes grow until the worker sheds oldest-open fragments
  // down to the budget. Every record must still be accounted for.
  std::atomic<uint64_t> sunk{0};
  LivePipelineOptions options;
  options.workers = 2;
  options.inactivity_ns = 3600 * kSec;
  options.max_batch_records = 32;
  options.shed_policy = ShedPolicy::kOldestOpen;
  options.shed_open_bytes = 16 << 10;  // Tiny per-shard budget.
  LivePipeline pipeline(options, [&](Session&& s) {
    sunk.fetch_add(s.records.size(), std::memory_order_relaxed);
  });
  const size_t kLines = 5000;
  for (size_t i = 0; i < kLines; ++i) {
    pipeline.FeedLine(ToWireFormat(
        Rec("S" + std::to_string(i % 200),
            static_cast<EventTime>(1 + i) * kNanosPerMilli)));
    if (i % 64 == 0) {
      pipeline.Flush();
    }
  }
  pipeline.Finish();
  EXPECT_GT(pipeline.shed_records(), 0u);
  EXPECT_EQ(pipeline.open_records(), 0u);  // Finish flushed or shed them all.
  // records_in == stored + shed, at both granularities.
  EXPECT_EQ(kLines, pipeline.records() + pipeline.shed_lines());
  EXPECT_EQ(pipeline.records(),
            pipeline.records_emitted() + pipeline.shed_records());
  EXPECT_EQ(sunk.load(), pipeline.records_emitted());
}

TEST(LivePipelineTest, HeadDropShedsLinesWithBoundedStall) {
  // A deliberately slow sink with a one-batch queue: with the shed policy on,
  // a blocked push waits at most shed_stall_limit_ms and then drops the
  // oldest queued batch, so ingest stays near wire speed while every dropped
  // line is counted in shed_lines.
  std::atomic<uint64_t> sunk{0};
  LivePipelineOptions options;
  options.workers = 1;
  options.inactivity_ns = kNanosPerMilli;  // Fragments close constantly.
  options.queue_capacity = 1;
  options.max_batch_records = 8;
  options.shed_policy = ShedPolicy::kOldestOpen;
  options.shed_stall_limit_ms = 1;
  LivePipeline pipeline(options, [&](Session&& s) {
    sunk.fetch_add(s.records.size(), std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  });
  const auto start = std::chrono::steady_clock::now();
  const size_t kLines = 1200;
  for (size_t i = 0; i < kLines; ++i) {
    pipeline.FeedLine(ToWireFormat(
        Rec("S" + std::to_string(i % 8),
            static_cast<EventTime>(1 + i) * 10 * kNanosPerMilli)));
  }
  pipeline.Finish();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GT(pipeline.shed_lines(), 0u);
  EXPECT_GT(pipeline.backpressure_stall_ns(), 0);
  // Head-dropped lines never reach a worker: they appear in shed_lines and
  // nowhere else, and the two-level identity still reconciles exactly.
  EXPECT_EQ(kLines, pipeline.records() + pipeline.shed_lines());
  EXPECT_EQ(pipeline.records(),
            pipeline.records_emitted() + pipeline.shed_records());
  EXPECT_EQ(sunk.load(), pipeline.records_emitted());
  // Bounded producer window: without shedding this workload would stall the
  // feeder behind ~minutes of sink sleeps.
  EXPECT_LT(elapsed, std::chrono::seconds(60));
}

TEST(LivePipelineTest, ShedMetricsRegisteredAndZeroWhenOff) {
  MetricsRegistry registry;
  LivePipelineOptions options;
  options.workers = 2;
  LivePipeline pipeline(options, [](Session&&) {});
  pipeline.RegisterMetrics(&registry);
  pipeline.FeedLine(ToWireFormat(Rec("S", kSec)));
  pipeline.Finish();
  const auto snapshot = registry.Snapshot();
  const auto get = [&](const std::string& name) -> int64_t {
    for (const auto& [k, v] : snapshot) {
      if (k == name) {
        return v;
      }
    }
    ADD_FAILURE() << "gauge missing: " << name;
    return -1;
  };
  EXPECT_EQ(get("live_shed_records"), 0);
  EXPECT_EQ(get("live_shed_lines"), 0);
  EXPECT_EQ(get("live_shed_fragments"), 0);
  EXPECT_EQ(get("live_backpressure_stall_us"), 0);
  EXPECT_EQ(get("live_records_emitted"), 1);
  EXPECT_EQ(get("live_open_records"), 0);
}

}  // namespace
}  // namespace ts
