// ts_net end-to-end tests over real loopback sockets: byte-for-byte round
// trips, stream partitioning, fragmentation under tiny buffers, mid-record
// server kill with reconnect-and-resume, connect retry, and equivalence of
// the socket ingest path with the in-memory arrival path through the
// IngestDriver and a timely computation.
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/log/wire_format.h"
#include "src/net/log_server.h"
#include "src/net/socket_ingest.h"
#include "src/replay/ingest_driver.h"
#include "src/replay/socket_source.h"
#include "src/timely/timely.h"
#include "src/workload/generator.h"

namespace ts {
namespace {

std::shared_ptr<std::vector<std::string>> MakeArchive(double records_per_sec,
                                                      EventTime seconds) {
  GeneratorConfig config;
  config.seed = 99;
  config.duration_ns = seconds * kNanosPerSecond;
  config.target_records_per_sec = records_per_sec;
  TraceGenerator gen(config);
  auto lines = std::make_shared<std::vector<std::string>>();
  Epoch epoch = 0;
  std::vector<LogRecord> records;
  while (gen.NextEpoch(&epoch, &records)) {
    for (const auto& r : records) {
      lines->push_back(ToWireFormat(r));
    }
  }
  return lines;
}

// Runs a LogServer on a background thread; joins on destruction.
class ServerRunner {
 public:
  ServerRunner(const LogServerOptions& options,
               std::shared_ptr<const std::vector<std::string>> lines)
      : server_(options, std::move(lines)) {}
  ~ServerRunner() { Stop(); }

  bool Start() {
    if (!server_.Start()) {
      return false;
    }
    thread_ = std::thread([this] { server_.Run(); });
    return true;
  }

  void Stop() {
    server_.Stop();
    if (thread_.joinable()) {
      thread_.join();
    }
  }

  LogServer& server() { return server_; }
  uint16_t port() const { return server_.port(); }

 private:
  LogServer server_;
  std::thread thread_;
};

SocketIngestOptions ClientOptions(uint16_t port) {
  SocketIngestOptions options;
  options.port = port;
  options.backoff_base_ms = 1;
  options.backoff_max_ms = 50;
  return options;
}

TEST(NetTransport, LoopbackRoundTripByteForByte) {
  auto archive = MakeArchive(3'000, 3);
  ASSERT_GT(archive->size(), 1'000u);

  LogServerOptions options;
  ServerRunner runner(options, archive);
  ASSERT_TRUE(runner.Start());

  SocketIngestSource client(ClientOptions(runner.port()));
  std::vector<std::string> received;
  ASSERT_TRUE(client.ReadAll(&received));
  runner.Stop();

  // The socket path must deliver the archive byte-for-byte: same records, in
  // order, nothing duplicated, dropped, or reframed.
  ASSERT_EQ(received.size(), archive->size());
  EXPECT_EQ(received, *archive);
  EXPECT_EQ(client.records_received(), archive->size());

  const auto client_stats = client.stats().Snapshot();
  EXPECT_EQ(client_stats.records_in, archive->size());
  EXPECT_EQ(client_stats.reconnects, 0u);
  EXPECT_EQ(client_stats.frame_errors, 0u);
  const auto server_stats = runner.server().stats().Snapshot();
  EXPECT_EQ(server_stats.accepts, 1u);
  EXPECT_EQ(server_stats.records_out, archive->size());
  EXPECT_EQ(server_stats.bytes_out, client_stats.bytes_in);
  EXPECT_EQ(runner.server().connections_completed(), 1u);
}

TEST(NetTransport, ServesRoundRobinStreamPartitions) {
  auto archive = MakeArchive(2'000, 2);
  const size_t kStreams = 3;

  LogServerOptions options;
  options.num_streams = kStreams;
  ServerRunner runner(options, archive);
  ASSERT_TRUE(runner.Start());

  size_t total = 0;
  for (size_t s = 0; s < kStreams; ++s) {
    auto copts = ClientOptions(runner.port());
    copts.stream = s;
    copts.num_streams = kStreams;
    SocketIngestSource client(copts);
    std::vector<std::string> received;
    ASSERT_TRUE(client.ReadAll(&received));
    // Stream s must hold exactly the records at archive indices s, s+3, ...
    std::vector<std::string> expected;
    for (size_t i = s; i < archive->size(); i += kStreams) {
      expected.push_back((*archive)[i]);
    }
    EXPECT_EQ(received, expected) << "stream " << s;
    total += received.size();
  }
  EXPECT_EQ(total, archive->size());
}

TEST(NetTransport, FragmentedDeliveryUnderTinyBuffers) {
  auto archive = MakeArchive(2'000, 2);

  LogServerOptions options;
  options.max_conn_buffer_bytes = 512;  // Forces thousands of partial writes.
  ServerRunner runner(options, archive);
  ASSERT_TRUE(runner.Start());

  auto copts = ClientOptions(runner.port());
  copts.read_chunk_bytes = 7;  // Nearly every record spans several reads.
  SocketIngestSource client(copts);
  std::vector<std::string> received;
  ASSERT_TRUE(client.ReadAll(&received));
  runner.Stop();

  EXPECT_EQ(received, *archive);
  // A 512-byte server budget against a fast producer must have stalled.
  EXPECT_GE(runner.server().stats().Snapshot().backpressure_stalls, 1u);
}

TEST(NetTransport, ServerKillMidStreamReconnectAndResume) {
  // Large enough (~30 MB on the wire) that the kernel cannot have buffered
  // the whole remainder — the kill is guaranteed to cut the stream short of
  // #EOS, forcing a real reconnect-and-resume.
  auto archive = MakeArchive(20'000, 5);
  ASSERT_GT(archive->size(), 50'000u);

  LogServerOptions options;
  auto first = std::make_unique<ServerRunner>(options, archive);
  ASSERT_TRUE(first->Start());
  const uint16_t port = first->port();

  auto copts = ClientOptions(port);
  // Cap the per-poll batch so the prefix loop below cannot race through the
  // whole archive inside one drain-to-EAGAIN call on a fast loopback.
  copts.max_records_per_poll = 100;
  SocketIngestSource client(copts);

  // Pull a prefix, then kill the server abruptly: the client is mid-stream
  // (usually mid-record) with no #EOS in sight.
  std::vector<std::string> received;
  while (received.size() < 500) {
    const auto poll = client.PollLines(&received, /*timeout_ms=*/200);
    ASSERT_NE(poll, SocketIngestSource::Poll::kEndOfStream);
    ASSERT_NE(poll, SocketIngestSource::Poll::kFailed);
  }
  first->Stop();
  first.reset();

  // Let the client drain whatever the kernel already buffered, discover the
  // drop, and start its backoff loop against a dead port before the
  // replacement server binds. (Records already in flight still count.)
  for (int i = 0; i < 3; ++i) {
    const auto poll = client.PollLines(&received, /*timeout_ms=*/10);
    ASSERT_NE(poll, SocketIngestSource::Poll::kEndOfStream);
    ASSERT_NE(poll, SocketIngestSource::Poll::kFailed);
  }
  ASSERT_LT(received.size(), archive->size());

  LogServerOptions retry = options;
  retry.port = port;
  ServerRunner replacement(retry, archive);
  ASSERT_TRUE(replacement.Start());
  ASSERT_TRUE(client.ReadAll(&received));
  replacement.Stop();

  // Exactly-once delivery across the kill: the resume offset skips what the
  // client already has, and the framer dropped the truncated tail.
  EXPECT_EQ(received, *archive);
  EXPECT_GE(client.stats().Snapshot().reconnects, 1u);
  EXPECT_GE(replacement.server().stats().Snapshot().resumes, 1u);
}

TEST(NetTransport, ConnectRetriesUntilServerAppears) {
  auto archive = MakeArchive(500, 1);

  // Reserve a port, then release it so the client's first attempts fail.
  uint16_t port = 0;
  {
    FdGuard probe(ListenTcp("127.0.0.1", 0, &port));
    ASSERT_TRUE(probe.valid());
  }

  auto copts = ClientOptions(port);
  SocketIngestSource client(copts);
  std::vector<std::string> received;
  // A few polls against nothing: all idle, backing off.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(client.PollLines(&received, 10), SocketIngestSource::Poll::kIdle);
  }
  EXPECT_TRUE(received.empty());

  LogServerOptions options;
  options.port = port;
  ServerRunner runner(options, archive);
  ASSERT_TRUE(runner.Start());
  ASSERT_TRUE(client.ReadAll(&received));
  EXPECT_EQ(received, *archive);
  EXPECT_EQ(client.stats().Snapshot().reconnects, 0u);  // Never connected before.
}

TEST(NetTransport, FailsAfterAttemptLimit) {
  uint16_t port = 0;
  {
    FdGuard probe(ListenTcp("127.0.0.1", 0, &port));
    ASSERT_TRUE(probe.valid());
  }
  auto copts = ClientOptions(port);
  copts.attempt_limit = 3;
  SocketIngestSource client(copts);
  std::vector<std::string> received;
  EXPECT_FALSE(client.ReadAll(&received));
  EXPECT_TRUE(received.empty());
}

// A raw hand-rolled server that cuts the connection exactly half-way through a
// record, then serves the remainder on the next connection — the worst-case
// framing + resume scenario, byte-deterministic.
TEST(NetTransport, DeterministicMidRecordCut) {
  const std::vector<std::string> lines = {
      "1|AAA|1|svc-1|h-1|ANNOT|one",
      "2|BBB|1|svc-1|h-1|ANNOT|two",
      "3|CCC|1|svc-1|h-1|ANNOT|three",
      "4|DDD|1|svc-1|h-1|ANNOT|four",
  };
  uint16_t port = 0;
  FdGuard listener(ListenTcp("127.0.0.1", 0, &port));
  ASSERT_TRUE(listener.valid());

  std::atomic<uint64_t> resume_offset{~0ull};
  std::thread server([&] {
    auto read_hello = [](int fd) {
      std::string hello;
      char c;
      while (::read(fd, &c, 1) == 1 && c != '\n') {
        hello.push_back(c);
      }
      return hello;
    };
    auto accept_one = [&]() {
      pollfd pfd{listener.get(), POLLIN, 0};
      ::poll(&pfd, 1, 5'000);
      return ::accept(listener.get(), nullptr, nullptr);
    };

    // Connection 1: hello, then two full records and half of the third.
    int fd = accept_one();
    ASSERT_GE(fd, 0);
    EXPECT_EQ(read_hello(fd), "TS1 0 0");
    std::string payload = lines[0] + "\n" + lines[1] + "\n" +
                          lines[2].substr(0, lines[2].size() / 2);
    ASSERT_EQ(::send(fd, payload.data(), payload.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(payload.size()));
    ::close(fd);  // Abrupt: no #EOS, record 3 truncated mid-line.

    // Connection 2: the client must resume at offset 2 (complete records).
    fd = accept_one();
    ASSERT_GE(fd, 0);
    const std::string hello = read_hello(fd);
    uint64_t offset = ~0ull;
    std::sscanf(hello.c_str(), "TS1 0 %llu",
                reinterpret_cast<unsigned long long*>(&offset));
    resume_offset.store(offset);
    payload.clear();
    for (size_t i = offset; i < lines.size(); ++i) {
      payload += lines[i] + "\n";
    }
    payload += "#EOS\n";
    ASSERT_EQ(::send(fd, payload.data(), payload.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(payload.size()));
    ::close(fd);
  });

  auto copts = ClientOptions(port);
  SocketIngestSource client(copts);
  std::vector<std::string> received;
  ASSERT_TRUE(client.ReadAll(&received));
  server.join();

  EXPECT_EQ(resume_offset.load(), 2u);
  EXPECT_EQ(received, lines);  // Exactly once, despite the mid-record cut.
  EXPECT_EQ(client.stats().Snapshot().reconnects, 1u);
}

// Canonical record key for order-insensitive equivalence comparison.
using RecordKey =
    std::tuple<EventTime, std::string, std::string, uint32_t, uint32_t, int,
               std::string>;

RecordKey KeyOf(const LogRecord& r) {
  return {r.time,    r.session_id,            r.txn_id.ToString(), r.service,
          r.host,    static_cast<int>(r.kind), r.payload};
}

TEST(NetTransport, SocketIngestDriverMatchesInMemoryParse) {
  auto archive = MakeArchive(2'000, 2);

  LogServerOptions options;
  ServerRunner runner(options, archive);
  ASSERT_TRUE(runner.Start());

  // The in-memory reference: parse the archive directly.
  std::vector<RecordKey> expected;
  for (const auto& line : *archive) {
    auto parsed = ParseWireFormat(line);
    ASSERT_TRUE(parsed.has_value());
    expected.push_back(KeyOf(*parsed));
  }

  // The socket path: SocketArrivalSource -> IngestDriver -> dataflow input.
  std::vector<RecordKey> fed;
  std::mutex fed_mu;
  const uint16_t port = runner.port();
  Computation::Options copts;
  copts.workers = 1;
  Computation::Run(copts, [&](Scope& scope) {
    auto [input, stream] = scope.NewInput<LogRecord>("logs");
    auto sunk = scope.Unary<LogRecord, Unit>(
        stream, Partition<LogRecord>::Pipeline(), "collect",
        [&fed, &fed_mu](Epoch e, std::vector<LogRecord>& data,
                        OutputSession<Unit>& out, NotificatorHandle&) {
          std::lock_guard<std::mutex> lock(fed_mu);
          for (const auto& r : data) {
            fed.push_back(KeyOf(r));
          }
          out.Give(e, Unit{});
          data.clear();
        },
        [](Epoch, OutputSession<Unit>&, NotificatorHandle&) {});
    scope.Probe(sunk, "probe");

    SocketArrivalSource::Options sopts;
    sopts.socket = ClientOptions(port);
    auto source = std::make_shared<SocketArrivalSource>(sopts);
    IngestDriver::Options dopts;
    dopts.slack_ns = 200 * kNanosPerMilli;
    auto driver = std::make_shared<IngestDriver>(
        source.get(), scope.worker_index(), input, dopts);
    scope.AddDriver([driver, source]() { return driver->Step(); });
  });
  runner.Stop();

  // The archive is event-time ordered, so nothing can be late-dropped; the
  // socket path must feed exactly the records the in-memory parse yields.
  std::sort(fed.begin(), fed.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(fed, expected);
}

}  // namespace
}  // namespace ts
