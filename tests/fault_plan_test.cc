// FaultPlan and ScriptedInjector unit tests: seeded determinism, text
// round-trips, parse diagnostics, and the byte-exact kill/storm/corruption
// semantics the conformance suite leans on.
#include <cerrno>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/metrics_registry.h"
#include "src/fault/fault_plan.h"
#include "src/fault/scripted_injector.h"

namespace ts {
namespace {

FaultProfile TestProfile() {
  FaultProfile p = FaultProfile::Aggressive(/*stream_bytes=*/1 << 16);
  p.corrupts = 2;
  p.truncates = 1;
  return p;
}

TEST(FaultPlan, SameSeedSamePlanByteForByte) {
  const FaultPlan a = FaultPlan::FromSeed(7, "aggressive", TestProfile());
  const FaultPlan b = FaultPlan::FromSeed(7, "aggressive", TestProfile());
  EXPECT_EQ(a.ToText(), b.ToText());
  EXPECT_FALSE(a.events.empty());

  const FaultPlan c = FaultPlan::FromSeed(8, "aggressive", TestProfile());
  EXPECT_NE(a.ToText(), c.ToText());
}

TEST(FaultPlan, EventsSortedByOffset) {
  const FaultPlan plan = FaultPlan::FromSeed(3, "aggressive", TestProfile());
  for (size_t i = 1; i < plan.events.size(); ++i) {
    EXPECT_LE(plan.events[i - 1].at, plan.events[i].at);
  }
}

TEST(FaultPlan, TextRoundTripsExactly) {
  const FaultPlan plan = FaultPlan::FromSeed(42, "corrupting", TestProfile());
  FaultPlan parsed;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse(plan.ToText(), &parsed, &error)) << error;
  EXPECT_EQ(parsed.seed, plan.seed);
  EXPECT_EQ(parsed.profile, plan.profile);
  ASSERT_EQ(parsed.events.size(), plan.events.size());
  for (size_t i = 0; i < plan.events.size(); ++i) {
    EXPECT_EQ(parsed.events[i].type, plan.events[i].type) << i;
    EXPECT_EQ(parsed.events[i].at, plan.events[i].at) << i;
    EXPECT_EQ(parsed.events[i].arg, plan.events[i].arg) << i;
  }
  EXPECT_EQ(parsed.ToText(), plan.ToText());
}

TEST(FaultPlan, ParseAcceptsCommentsBlanksAndCrLf) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse(
      "# a comment\r\n\nseed 9\r\nprofile mild\nkill at=100\n"
      "stall at=200 arg=3\n",
      &plan, &error))
      << error;
  EXPECT_EQ(plan.seed, 9u);
  EXPECT_EQ(plan.profile, "mild");
  ASSERT_EQ(plan.events.size(), 2u);
  EXPECT_EQ(plan.events[0].type, FaultType::kKill);
  EXPECT_EQ(plan.events[1].arg, 3u);
}

TEST(FaultPlan, ParseRejectsGarbageWithLineNumbers) {
  FaultPlan plan;
  std::string error;
  EXPECT_FALSE(FaultPlan::Parse("explode at=1\n", &plan, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  EXPECT_NE(error.find("explode"), std::string::npos) << error;

  EXPECT_FALSE(FaultPlan::Parse("seed 1\nkill arg=2\n", &plan, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("at="), std::string::npos) << error;

  EXPECT_FALSE(FaultPlan::Parse("kill at=1 bogus=2\n", &plan, &error));
  EXPECT_NE(error.find("bogus"), std::string::npos) << error;

  EXPECT_FALSE(FaultPlan::Parse("seed banana\n", &plan, &error));
}

TEST(FaultPlan, ResolveProfilePresets) {
  FaultProfile p;
  ASSERT_TRUE(FaultPlan::ResolveProfile("mild", 1 << 20, &p));
  EXPECT_EQ(p.stream_bytes, 1u << 20);
  EXPECT_EQ(p.corrupts, 0);  // Identity-safe: no corruption.
  ASSERT_TRUE(FaultPlan::ResolveProfile("aggressive", 1 << 20, &p));
  EXPECT_EQ(p.corrupts, 0);
  ASSERT_TRUE(FaultPlan::ResolveProfile("corrupting", 1 << 20, &p));
  EXPECT_GT(p.corrupts, 0);
  EXPECT_FALSE(FaultPlan::ResolveProfile("apocalyptic", 1 << 20, &p));
}

// --- Disk-event surface (ENOSPC / EIO / short, torn writes / fsync,
// rename failures) riding the same grammar and seed→schedule function ---

TEST(FaultPlan, DiskEventTextGrammarRoundTrips) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse(
      "seed 5\nprofile disk-mild\n"
      "enospc at=0 arg=3\neio at=100 arg=2\nshortwrite at=200 arg=7\n"
      "fsyncfail at=300 arg=1\nrenamefail at=400 arg=1\ntornwrite at=500\n",
      &plan, &error))
      << error;
  ASSERT_EQ(plan.events.size(), 6u);
  EXPECT_EQ(plan.events[0].type, FaultType::kEnospc);
  EXPECT_EQ(plan.events[1].type, FaultType::kEio);
  EXPECT_EQ(plan.events[2].type, FaultType::kShortWrite);
  EXPECT_EQ(plan.events[3].type, FaultType::kFsyncFail);
  EXPECT_EQ(plan.events[4].type, FaultType::kRenameFail);
  EXPECT_EQ(plan.events[5].type, FaultType::kTornWrite);
  EXPECT_EQ(plan.events[5].at, 500u);
  // ToText emits exactly what Parse accepted.
  FaultPlan reparsed;
  ASSERT_TRUE(FaultPlan::Parse(plan.ToText(), &reparsed, &error)) << error;
  EXPECT_EQ(reparsed.ToText(), plan.ToText());
}

TEST(FaultPlan, DiskPresetsResolveAndDrawDeterministically) {
  FaultProfile p;
  ASSERT_TRUE(FaultPlan::ResolveProfile("disk-mild", 1 << 20, &p));
  EXPECT_EQ(p.kills, 0);  // Disk presets leave the transport alone.
  EXPECT_GT(p.enospc_windows, 0);
  EXPECT_EQ(p.torn_writes, 0);
  ASSERT_TRUE(FaultPlan::ResolveProfile("disk-aggressive", 1 << 20, &p));
  EXPECT_EQ(p.kills, 0);
  EXPECT_GT(p.torn_writes, 0);
  EXPECT_GT(p.rename_fails, 0);

  const FaultPlan a = FaultPlan::FromSeed(21, "disk-aggressive", p);
  const FaultPlan b = FaultPlan::FromSeed(21, "disk-aggressive", p);
  EXPECT_EQ(a.ToText(), b.ToText());
  EXPECT_FALSE(a.events.empty());
  EXPECT_NE(a.ToText(), FaultPlan::FromSeed(22, "disk-aggressive", p).ToText());
}

TEST(FaultPlan, NetworkPlansAreByteStableAgainstTheDiskSurface) {
  // The disk draws happen after all network draws and touch the rng only
  // when a disk count is nonzero — so every pre-existing network preset's
  // seeded plan is unchanged byte for byte by the disk surface existing.
  // This pins the exact plan text of a known (seed, profile) pair: if this
  // test breaks, archived failure reports stop replaying.
  const FaultProfile p = FaultProfile::Aggressive(1 << 16);
  EXPECT_EQ(p.enospc_windows + p.eios + p.short_writes + p.fsync_fails +
                p.rename_fails + p.torn_writes,
            0);
  const FaultPlan plan = FaultPlan::FromSeed(7, "aggressive", p);
  for (const FaultEvent& e : plan.events) {
    EXPECT_NE(e.type, FaultType::kEnospc);
    EXPECT_NE(e.type, FaultType::kEio);
    EXPECT_NE(e.type, FaultType::kShortWrite);
    EXPECT_NE(e.type, FaultType::kFsyncFail);
    EXPECT_NE(e.type, FaultType::kRenameFail);
    EXPECT_NE(e.type, FaultType::kTornWrite);
  }
}

// --- ScriptedInjector semantics ---

FaultPlan ManualPlan(std::vector<FaultEvent> events) {
  FaultPlan plan;
  plan.events = std::move(events);
  return plan;
}

TEST(FaultInjectorUnit, KillIsByteExact) {
  // Kill at offset 10: an 8-byte I/O proceeds, the next I/O is clamped to end
  // exactly at byte 10, and the attempt after that dies with ECONNRESET.
  ScriptedInjector injector(ManualPlan({{FaultType::kKill, 10, 0}}));

  FaultAction a = injector.OnSend(8);
  EXPECT_EQ(a.kind, FaultAction::Kind::kProceed);
  injector.OnIoBytes(8);

  a = injector.OnSend(8);  // Would cross the boundary: clamp to 2.
  ASSERT_EQ(a.kind, FaultAction::Kind::kClamp);
  EXPECT_EQ(a.max_bytes, 2u);
  injector.OnIoBytes(2);

  a = injector.OnSend(8);  // Exactly on the boundary: die.
  ASSERT_EQ(a.kind, FaultAction::Kind::kFail);
  EXPECT_EQ(a.error, ECONNRESET);
  EXPECT_EQ(injector.counters().kills, 1u);
  EXPECT_EQ(injector.bytes_allowed(), 10u);

  a = injector.OnSend(8);  // Plan exhausted: back to normal.
  EXPECT_EQ(a.kind, FaultAction::Kind::kProceed);
}

TEST(FaultInjectorUnit, StormsFailTheNextNAttempts) {
  ScriptedInjector injector(ManualPlan(
      {{FaultType::kEagain, 0, 2}, {FaultType::kEintr, 0, 1}}));
  FaultAction a = injector.OnRecv(64);
  ASSERT_EQ(a.kind, FaultAction::Kind::kFail);
  EXPECT_EQ(a.error, EAGAIN);
  a = injector.OnRecv(64);
  ASSERT_EQ(a.kind, FaultAction::Kind::kFail);
  EXPECT_EQ(a.error, EAGAIN);
  a = injector.OnRecv(64);
  ASSERT_EQ(a.kind, FaultAction::Kind::kFail);
  EXPECT_EQ(a.error, EINTR);
  a = injector.OnRecv(64);
  EXPECT_EQ(a.kind, FaultAction::Kind::kProceed);
  const FaultCountersSnapshot counters = injector.counters();
  EXPECT_EQ(counters.eagain_failures, 2u);
  EXPECT_EQ(counters.eintr_failures, 1u);
}

TEST(FaultInjectorUnit, PartialClampsOnce) {
  ScriptedInjector injector(ManualPlan({{FaultType::kPartial, 0, 3}}));
  FaultAction a = injector.OnSend(100);
  ASSERT_EQ(a.kind, FaultAction::Kind::kClamp);
  EXPECT_EQ(a.max_bytes, 3u);
  injector.OnIoBytes(3);
  EXPECT_EQ(injector.OnSend(100).kind, FaultAction::Kind::kProceed);
}

TEST(FaultInjectorUnit, RefusalWindowVetoesConnects) {
  ScriptedInjector injector(ManualPlan({{FaultType::kRefuse, 0, 2}}));
  EXPECT_FALSE(injector.OnConnect());
  EXPECT_FALSE(injector.OnConnect());
  EXPECT_TRUE(injector.OnConnect());
  EXPECT_EQ(injector.counters().refusals, 2u);
}

TEST(FaultInjectorUnit, CorruptionNeverFabricatesNewlines) {
  // '*' is 0x2A; a bare XOR 0x20 would turn it into '\n' (0x0A) and fabricate
  // a frame boundary. The injector must detour to a printable byte instead.
  ScriptedInjector injector(ManualPlan({{FaultType::kCorrupt, 0, 8}}));
  EXPECT_EQ(injector.OnRecv(8).kind, FaultAction::Kind::kProceed);
  char data[] = {'a', 'B', '*', '1', '|', 'x', 'y', 'z'};
  injector.OnRecvData(data, sizeof(data));
  for (char c : data) {
    EXPECT_NE(c, '\n');
  }
  EXPECT_EQ(data[0], 'A');  // 'a' ^ 0x20
  EXPECT_EQ(data[2], 'N');  // The '\n' guard.
  EXPECT_EQ(injector.counters().corrupted_bytes, 8u);
}

TEST(FaultInjectorUnit, TruncateIsIgnoredInProcess) {
  ScriptedInjector injector(ManualPlan({{FaultType::kTruncate, 0, 5}}));
  EXPECT_EQ(injector.OnSend(10).kind, FaultAction::Kind::kProceed);
  EXPECT_EQ(injector.counters().total(), 0u);
}

TEST(FaultInjectorUnit, MetricsGaugesExportCounters) {
  ScriptedInjector injector(ManualPlan({{FaultType::kRefuse, 0, 1}}));
  MetricsRegistry registry;
  injector.RegisterMetrics(&registry);
  EXPECT_FALSE(injector.OnConnect());
  bool saw = false;
  for (const auto& [name, value] : registry.Snapshot()) {
    if (name == "fault_refusals") {
      saw = true;
      EXPECT_EQ(value, 1);
    }
  }
  EXPECT_TRUE(saw);
}

}  // namespace
}  // namespace ts
