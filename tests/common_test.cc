// Unit tests for ts_common: SipHash-2-4 against the reference vectors, RNG
// determinism and distribution sanity, statistics utilities, and FixedQueue.
#include <algorithm>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/fixed_queue.h"
#include "src/common/mem_probe.h"
#include "src/common/rng.h"
#include "src/common/siphash.h"
#include "src/common/stats.h"
#include "src/common/time_util.h"

namespace ts {
namespace {

// Official SipHash-2-4 test vectors (Aumasson & Bernstein reference
// implementation): key = 000102...0f, input i = bytes 00 01 ... (i-1).
TEST(SipHash, ReferenceVectors) {
  const SipHashKey key{0x0706050403020100ULL, 0x0f0e0d0c0b0a0908ULL};
  const uint64_t expected[] = {
      0x726fdb47dd0e0e31ULL, 0x74f839c593dc67fdULL, 0x0d6c8009d9a94f5aULL,
      0x85676696d7fb7e2dULL, 0xcf2794e0277187b7ULL, 0x18765564cd99a68dULL,
      0xcbc9466e58fee3ceULL, 0xab0200f58b01d137ULL, 0x93f5f5799a932462ULL,
  };
  uint8_t input[9];
  for (size_t len = 0; len < 9; ++len) {
    if (len > 0) {
      input[len - 1] = static_cast<uint8_t>(len - 1);
    }
    EXPECT_EQ(SipHash24(input, len, key), expected[len]) << "len=" << len;
  }
}

TEST(SipHash, StringAndIntOverloads) {
  EXPECT_EQ(SipHash24(std::string_view("hello")), SipHash24("hello", 5, SipHashKey{}));
  EXPECT_NE(SipHash24(std::string_view("hello")), SipHash24(std::string_view("hellp")));
  EXPECT_NE(SipHash24(uint64_t{1}), SipHash24(uint64_t{2}));
}

TEST(SipHash, DistributesSessionIdsAcrossWorkers) {
  // Hash-based partitioning should be balanced across a worker pool.
  constexpr int kWorkers = 8;
  constexpr int kIds = 20000;
  std::vector<int> counts(kWorkers);
  Rng rng(1);
  for (int i = 0; i < kIds; ++i) {
    std::string id = "SESSION" + std::to_string(rng.Next());
    ++counts[SipHash24(id) % kWorkers];
  }
  for (int c : counts) {
    EXPECT_GT(c, kIds / kWorkers * 0.9);
    EXPECT_LT(c, kIds / kWorkers * 1.1);
  }
}

TEST(Rng, DeterministicAndForkIndependent) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Rng c(123);
  Rng fork = c.Fork();
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    any_diff |= (c.Next() != fork.Next());
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, NextBelowIsUnbiasedAndInRange) {
  Rng rng(7);
  std::vector<int> counts(10);
  for (int i = 0; i < 100000; ++i) {
    const uint64_t v = rng.NextBelow(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 10000, 500);
  }
}

TEST(Rng, NextInRangeCoversBounds) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(11);
  double sum = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.NextExponential(5.0);
  }
  EXPECT_NEAR(sum / kN, 5.0, 0.1);
}

TEST(Rng, LogNormalMedianMatches) {
  Rng rng(13);
  SampleSet samples;
  for (int i = 0; i < 100000; ++i) {
    samples.Add(rng.NextLogNormal(std::log(2.0), 0.7));
  }
  EXPECT_NEAR(samples.Median(), 2.0, 0.1);
}

TEST(Rng, BoundedParetoStaysInBounds) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextBoundedPareto(1.0, 100.0, 1.2);
    ASSERT_GE(v, 1.0);
    ASSERT_LE(v, 100.0);
  }
}

TEST(Zipf, SkewConcentratesMass) {
  ZipfSampler zipf(100, 1.2);
  Rng rng(19);
  std::vector<int> counts(100);
  for (int i = 0; i < 50000; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  // Rank 0 should dominate rank 50 heavily.
  EXPECT_GT(counts[0], counts[50] * 10);
  // All samples valid.
  int total = 0;
  for (int c : counts) {
    total += c;
  }
  EXPECT_EQ(total, 50000);
}

TEST(OnlineStats, MomentsAndExtrema) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // Sample stddev.
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(SampleSet, ExactQuantiles) {
  SampleSet s;
  for (int i = 100; i >= 1; --i) {
    s.Add(i);
  }
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 100.0);
  EXPECT_NEAR(s.Median(), 50.5, 1e-9);
  EXPECT_NEAR(s.Quantile(0.25), 25.75, 1e-9);
  EXPECT_NEAR(s.Quantile(0.99), 99.01, 1e-9);
  EXPECT_DOUBLE_EQ(s.Mean(), 50.5);
}

TEST(SampleSet, QuantileIsMonotoneInQ) {
  Rng rng(23);
  SampleSet s;
  for (int i = 0; i < 1000; ++i) {
    s.Add(rng.NextDouble() * 100);
  }
  double prev = s.Quantile(0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double v = s.Quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(BoxSummary, MatchesManualComputation) {
  SampleSet s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 100.0}) {
    s.Add(v);
  }
  BoxSummary box = Summarize(s);
  EXPECT_EQ(box.count, 10u);
  EXPECT_NEAR(box.median, 5.5, 1e-9);
  EXPECT_EQ(box.outliers, 1u);  // 100 is beyond q3 + 1.5*IQR.
  EXPECT_LE(box.whisker_hi, 9.0);
  EXPECT_GE(box.whisker_lo, 1.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0, 10, 5);
  h.Add(-1);   // Clamps to bucket 0.
  h.Add(0.5);
  h.Add(3.0);
  h.Add(9.9);
  h.Add(50);   // Clamps to last bucket.
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
}

TEST(LogHistogram, LogDiscretization) {
  EXPECT_EQ(LogDiscretize(0.1), 0);
  EXPECT_EQ(LogDiscretize(1.0), 0);
  EXPECT_EQ(LogDiscretize(2.0), 1);
  EXPECT_EQ(LogDiscretize(3.9), 1);
  EXPECT_EQ(LogDiscretize(1024.0), 10);
  LogHistogram h;
  h.Add(1);
  h.Add(2);
  h.Add(3);
  h.Add(1000, 4);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.buckets().at(0), 1u);
  EXPECT_EQ(h.buckets().at(1), 2u);
  EXPECT_EQ(h.buckets().at(9), 4u);
}

TEST(EmpiricalCdf, MonotoneWithCorrectEndpoints) {
  SampleSet s;
  for (int i = 1; i <= 1000; ++i) {
    s.Add(i);
  }
  auto cdf = EmpiricalCdf(s, 50);
  ASSERT_EQ(cdf.size(), 50u);
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().first, 1000.0);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GT(cdf[i].second, cdf[i - 1].second);
  }
  // Median point ~500.
  EXPECT_NEAR(cdf[24].first, 500.0, 15.0);
}

TEST(EmpiricalCdf, FewerSamplesThanPoints) {
  SampleSet s;
  s.Add(3);
  s.Add(1);
  auto cdf = EmpiricalCdf(s, 100);
  ASSERT_EQ(cdf.size(), 2u);
  EXPECT_DOUBLE_EQ(cdf[0].second, 0.5);
  EXPECT_DOUBLE_EQ(cdf[1].first, 3.0);
}

TEST(Formatting, AdaptiveUnits) {
  EXPECT_EQ(FormatNanos(500), "500 ns");
  EXPECT_EQ(FormatNanos(2'500), "2.5 us");
  EXPECT_EQ(FormatNanos(21'000'000), "21.0 ms");
  EXPECT_EQ(FormatNanos(1.5e9), "1.50 s");
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(203 * 1024.0 * 1024.0), "203.0 MiB");
}

TEST(EpochMapper, RoundsDownAndClampsNegative) {
  EpochMapper mapper;
  EXPECT_EQ(mapper.ToEpoch(0), 0u);
  EXPECT_EQ(mapper.ToEpoch(kNanosPerSecond - 1), 0u);
  EXPECT_EQ(mapper.ToEpoch(kNanosPerSecond), 1u);
  EXPECT_EQ(mapper.ToEpoch(-5), 0u);
  EXPECT_EQ(mapper.EpochStart(3), 3 * kNanosPerSecond);
  EpochMapper fine(100 * kNanosPerMilli);
  EXPECT_EQ(fine.ToEpoch(kNanosPerSecond), 10u);
}

TEST(MemProbe, ReportsPlausibleRss) {
  const uint64_t rss = CurrentRssBytes();
  const uint64_t peak = PeakRssBytes();
  EXPECT_GT(rss, 1u << 20);  // A test process uses more than 1 MiB.
  EXPECT_GE(peak, rss / 2);  // Peak cannot be far below current.
}

TEST(FixedQueue, FifoAndCapacity) {
  FixedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // Full: backpressure.
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(FixedQueue, CloseDrainsThenEnds) {
  FixedQueue<int> q(4);
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_FALSE(q.Push(3));  // Rejected after close.
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(FixedQueue, PushWithTimeoutExpiresWhenFullAndKeepsItem) {
  FixedQueue<int> q(1);
  ASSERT_TRUE(q.TryPush(1));
  int item = 2;
  // Full queue: the bounded wait expires without consuming the item.
  EXPECT_FALSE(q.PushWithTimeout(item, std::chrono::milliseconds(5)));
  EXPECT_EQ(item, 2);
  EXPECT_EQ(q.Pop().value(), 1);
  // With room it succeeds immediately.
  EXPECT_TRUE(q.PushWithTimeout(item, std::chrono::milliseconds(5)));
  EXPECT_EQ(q.Pop().value(), 2);
  q.Close();
  int after_close = 3;
  EXPECT_FALSE(q.PushWithTimeout(after_close, std::chrono::milliseconds(1)));
}

TEST(FixedQueue, PopFrontIfHonorsPredicate) {
  FixedQueue<int> q(4);
  int out = 0;
  EXPECT_FALSE(q.PopFrontIf([](const int&) { return true; }, &out));  // Empty.
  ASSERT_TRUE(q.TryPush(7));
  ASSERT_TRUE(q.TryPush(8));
  // Predicate sees only the head; a false verdict leaves the queue intact.
  EXPECT_FALSE(q.PopFrontIf([](const int& v) { return v == 8; }, &out));
  EXPECT_TRUE(q.PopFrontIf([](const int& v) { return v == 7; }, &out));
  EXPECT_EQ(out, 7);
  EXPECT_EQ(q.Pop().value(), 8);
}

TEST(FixedQueue, BlockingHandoffAcrossThreads) {
  FixedQueue<int> q(1);
  std::vector<int> received;
  std::thread consumer([&] {
    while (auto v = q.Pop()) {
      received.push_back(*v);
    }
  });
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(q.Push(i));  // Blocks when the consumer lags; never drops.
  }
  q.Close();
  consumer.join();
  ASSERT_EQ(received.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(received[i], i);
  }
}

}  // namespace
}  // namespace ts
