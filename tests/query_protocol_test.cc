// Tests for the ts_query wire protocol: request parsing, the canonical
// session-block serialization, and the incremental block decoder. The
// encode -> line-by-line decode round trip here is the contract the
// query-server loopback tests build on.
#include <gtest/gtest.h>

#include "src/log/wire_format.h"
#include "src/query/query_protocol.h"

namespace ts {
namespace {

LogRecord MakeRecord(EventTime t, const std::string& id, uint32_t service,
                     const std::string& payload = "p=1") {
  LogRecord r;
  r.time = t;
  r.session_id = id;
  r.txn_id = *TxnId::Parse("1-2");
  r.service = service;
  r.host = service + 100;
  r.kind = EventKind::kAnnotation;
  r.payload = payload;
  return r;
}

Session MakeSession(const std::string& id, size_t records,
                    uint32_t fragment = 0) {
  Session s;
  s.id = id;
  s.fragment_index = fragment;
  s.first_epoch = 3;
  s.last_epoch = 7;
  s.closed_at = 9;
  for (size_t i = 0; i < records; ++i) {
    s.records.push_back(
        MakeRecord(static_cast<EventTime>(1000 + i), id,
                   static_cast<uint32_t>(i % 5), "k=" + std::to_string(i)));
  }
  return s;
}

// Feeds a multi-line wire buffer through the parser one line at a time.
std::vector<Session> DecodeAll(const std::string& wire,
                               SessionBlockParser* parser, bool* error) {
  std::vector<Session> out;
  *error = false;
  size_t pos = 0;
  while (pos < wire.size()) {
    const size_t nl = wire.find('\n', pos);
    const std::string line = wire.substr(pos, nl - pos);
    pos = nl == std::string::npos ? wire.size() : nl + 1;
    Session s;
    switch (parser->Feed(line, &s)) {
      case SessionBlockParser::Result::kSession:
        out.push_back(std::move(s));
        break;
      case SessionBlockParser::Result::kError:
        *error = true;
        return out;
      default:
        break;
    }
  }
  return out;
}

void ExpectSessionsEqual(const Session& a, const Session& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.fragment_index, b.fragment_index);
  EXPECT_EQ(a.first_epoch, b.first_epoch);
  EXPECT_EQ(a.last_epoch, b.last_epoch);
  EXPECT_EQ(a.closed_at, b.closed_at);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(ToWireFormat(a.records[i]), ToWireFormat(b.records[i]));
  }
}

TEST(ParseQueryRequest, AcceptsEveryVerbWithDefaults) {
  QueryRequest r;
  std::string error;
  ASSERT_TRUE(ParseQueryRequest("GET abc", &r, &error));
  EXPECT_EQ(r.verb, QueryRequest::Verb::kGet);
  EXPECT_EQ(r.id, "abc");
  EXPECT_EQ(r.fragment, 0u);

  ASSERT_TRUE(ParseQueryRequest("GET abc 2", &r, &error));
  EXPECT_EQ(r.fragment, 2u);

  ASSERT_TRUE(ParseQueryRequest("FRAGMENTS abc", &r, &error));
  EXPECT_EQ(r.verb, QueryRequest::Verb::kFragments);

  ASSERT_TRUE(ParseQueryRequest("SERVICE 17", &r, &error));
  EXPECT_EQ(r.verb, QueryRequest::Verb::kService);
  EXPECT_EQ(r.service, 17u);
  EXPECT_EQ(r.limit, 100u);

  ASSERT_TRUE(ParseQueryRequest("SERVICE 17 5", &r, &error));
  EXPECT_EQ(r.limit, 5u);

  ASSERT_TRUE(ParseQueryRequest("RANGE 100 200 7", &r, &error));
  EXPECT_EQ(r.verb, QueryRequest::Verb::kRange);
  EXPECT_EQ(r.lo, 100);
  EXPECT_EQ(r.hi, 200);
  EXPECT_EQ(r.limit, 7u);

  ASSERT_TRUE(ParseQueryRequest("STATS", &r, &error));
  EXPECT_EQ(r.verb, QueryRequest::Verb::kStats);

  ASSERT_TRUE(ParseQueryRequest("TOPK 3", &r, &error));
  EXPECT_EQ(r.verb, QueryRequest::Verb::kTopK);
  EXPECT_EQ(r.k, 3u);

  ASSERT_TRUE(ParseQueryRequest("TEMPLATES", &r, &error));
  EXPECT_EQ(r.verb, QueryRequest::Verb::kTemplates);
  EXPECT_EQ(r.k, 10u);

  ASSERT_TRUE(ParseQueryRequest("TEMPLATES 5", &r, &error));
  EXPECT_EQ(r.verb, QueryRequest::Verb::kTemplates);
  EXPECT_EQ(r.k, 5u);

  ASSERT_TRUE(ParseQueryRequest("SUBSCRIBE", &r, &error));
  EXPECT_EQ(r.verb, QueryRequest::Verb::kSubscribe);
  EXPECT_FALSE(r.filter_by_service);

  ASSERT_TRUE(ParseQueryRequest("SUBSCRIBE service=42", &r, &error));
  EXPECT_TRUE(r.filter_by_service);
  EXPECT_EQ(r.filter_service, 42u);
  EXPECT_FALSE(r.filter_by_prefix);

  ASSERT_TRUE(ParseQueryRequest("SUBSCRIBE prefix=user-", &r, &error));
  EXPECT_TRUE(r.filter_by_prefix);
  EXPECT_EQ(r.filter_prefix, "user-");
  EXPECT_FALSE(r.filter_by_service);
}

TEST(ParseQueryRequest, RejectsMalformedRequests) {
  QueryRequest r;
  std::string error;
  const char* bad[] = {
      "",
      "   ",
      "NOPE x",
      "GET",
      "GET id frag extra",
      "GET id notanumber",
      "FRAGMENTS",
      "SERVICE",
      "SERVICE abc",
      "SERVICE 1 xyz",
      "RANGE 1",
      "RANGE 1 b",
      "RANGE 1 2 3 4",
      "STATS now",
      "TOPK 1 2",
      "TOPK k",
      "TEMPLATES 1 2",
      "TEMPLATES k",
      "SUBSCRIBE svc=1",
      "SUBSCRIBE service=x",
      "SUBSCRIBE service=1 extra",
      "SUBSCRIBE prefix=",
      "SUBSCRIBE prefix=a extra",
  };
  for (const char* request : bad) {
    EXPECT_FALSE(ParseQueryRequest(request, &r, &error)) << request;
    EXPECT_FALSE(error.empty()) << request;
  }
}

TEST(SessionBlock, EncodeDecodeRoundTrip) {
  const Session original = MakeSession("RT1", 13);
  SessionBlockParser parser;
  bool error = false;
  auto decoded = DecodeAll(EncodeSessionBlock(original), &parser, &error);
  EXPECT_FALSE(error);
  ASSERT_EQ(decoded.size(), 1u);
  ExpectSessionsEqual(original, decoded[0]);
  EXPECT_FALSE(parser.in_block());
}

TEST(SessionBlock, EmptySessionAndBackToBackBlocks) {
  std::string wire = EncodeSessionBlock(MakeSession("A", 0));
  wire += EncodeSessionBlock(MakeSession("B", 2, /*fragment=*/4));
  SessionBlockParser parser;
  bool error = false;
  auto decoded = DecodeAll(wire, &parser, &error);
  EXPECT_FALSE(error);
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].id, "A");
  EXPECT_TRUE(decoded[0].records.empty());
  EXPECT_EQ(decoded[1].id, "B");
  EXPECT_EQ(decoded[1].fragment_index, 4u);
}

TEST(SessionBlock, ControlLinesPassThroughAsNotBlock) {
  SessionBlockParser parser;
  Session s;
  EXPECT_EQ(parser.Feed("#OK 3", &s), SessionBlockParser::Result::kNotBlock);
  EXPECT_EQ(parser.Feed("#DROPPED 9", &s),
            SessionBlockParser::Result::kNotBlock);
  EXPECT_EQ(parser.Feed("STAT x 1", &s), SessionBlockParser::Result::kNotBlock);
}

TEST(SessionBlock, RecordCountMismatchIsError) {
  // Header claims 2 records but the block ends after 1.
  const Session session = MakeSession("M", 2);
  std::string wire = EncodeSessionBlock(session);
  // Drop the second record line (third line of the block).
  size_t first_nl = wire.find('\n');
  size_t second_nl = wire.find('\n', first_nl + 1);
  size_t third_nl = wire.find('\n', second_nl + 1);
  wire.erase(second_nl + 1, third_nl - second_nl);
  SessionBlockParser parser;
  bool error = false;
  DecodeAll(wire, &parser, &error);
  EXPECT_TRUE(error);
  EXPECT_FALSE(parser.in_block());  // Parser resets after an error.
}

TEST(SessionBlock, MalformedHeaderAndRecordAreErrors) {
  SessionBlockParser parser;
  Session s;
  EXPECT_EQ(parser.Feed("#SESSION nonsense", &s),
            SessionBlockParser::Result::kError);
  // Valid header, then garbage instead of a record.
  EXPECT_EQ(parser.Feed("#SESSION 0 1 2 3 1 X", &s),
            SessionBlockParser::Result::kNeedMore);
  EXPECT_EQ(parser.Feed("not a record", &s),
            SessionBlockParser::Result::kError);
  EXPECT_FALSE(parser.in_block());
}

TEST(ControlLines, FormatAndParseRoundTrip) {
  EXPECT_EQ(FormatOk(12), "#OK 12");
  EXPECT_EQ(FormatErr("boom"), "#ERR boom");
  EXPECT_EQ(FormatDropped(7), "#DROPPED 7");
  EXPECT_EQ(ParseOk("#OK 12"), std::optional<uint64_t>(12));
  EXPECT_EQ(ParseOk("#ERR x"), std::nullopt);
  EXPECT_EQ(ParseDropped("#DROPPED 7"), std::optional<uint64_t>(7));
  EXPECT_EQ(ParseDropped("#OK 7"), std::nullopt);
}

TEST(TemplateLines, FormatAndParseRoundTrip) {
  TemplateCount entry{42, 1234, 56789, "request served from <*> in <*>"};
  const std::string line = FormatTemplateLine(entry);
  EXPECT_EQ(line, "TMPL 42 1234 56789 request served from <*> in <*>");
  auto parsed = ParseTemplateLine(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->id, entry.id);
  EXPECT_EQ(parsed->hits, entry.hits);
  EXPECT_EQ(parsed->ppm, entry.ppm);
  EXPECT_EQ(parsed->text, entry.text);  // Text keeps its internal spaces.

  EXPECT_FALSE(ParseTemplateLine("TMPL 42 1234").has_value());
  EXPECT_FALSE(ParseTemplateLine("TMPL x y z text").has_value());
  EXPECT_FALSE(ParseTemplateLine("TOP 1 2").has_value());
  EXPECT_FALSE(ParseTemplateLine("").has_value());
}

}  // namespace
}  // namespace ts
