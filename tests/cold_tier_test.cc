// Tests for the tiered session store (src/store): cold segment format
// round-trips, the damage-tolerance property (every-byte corruption and
// every-boundary truncation degrade to a cold miss — never a crash, never a
// wrong answer), restart re-discovery, byte-identity of tiered query serving
// against an unbounded reference store, and the RANGE response-budget
// regression over a 100k-session cold tier.
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/analytics/session_store.h"
#include "src/common/time_util.h"
#include "src/query/query_client.h"
#include "src/query/query_protocol.h"
#include "src/query/query_server.h"
#include "src/store/cold_segment.h"
#include "src/store/cold_tier.h"
#include "src/store/tiered_digest.h"

namespace ts {
namespace {

Session MakeSession(const std::string& id, EventTime start_ns,
                    EventTime end_ns, std::vector<uint32_t> services,
                    uint32_t fragment = 0, size_t payload_bytes = 8) {
  Session s;
  s.id = id;
  s.fragment_index = fragment;
  EventTime t = start_ns;
  const EventTime step =
      services.empty()
          ? 0
          : (end_ns - start_ns) / static_cast<EventTime>(services.size() + 1);
  for (uint32_t svc : services) {
    LogRecord r;
    r.time = t;
    r.session_id = id;
    r.txn_id = *TxnId::Parse("1-2");
    r.service = svc;
    r.host = svc;
    r.kind = EventKind::kAnnotation;
    r.payload = "x=" + std::string(payload_bytes, 'a');
    s.records.push_back(std::move(r));
    t += step;
  }
  if (s.records.size() >= 2) {
    s.records.back().time = end_ns;
  }
  s.first_epoch = static_cast<Epoch>(start_ns / kNanosPerSecond);
  s.last_epoch = static_cast<Epoch>(end_ns / kNanosPerSecond);
  s.closed_at = s.last_epoch;
  return s;
}

// Fresh scratch directory per test; removed (best effort) on scope exit.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag)
      : path_(::testing::TempDir() + "ts_cold_" + tag + "_" +
              std::to_string(::getpid())) {
    Wipe();
  }
  ~ScratchDir() { Wipe(); }
  const std::string& path() const { return path_; }

 private:
  void Wipe() {
    const std::string cmd = "rm -rf '" + path_ + "'";
    if (std::system(cmd.c_str()) != 0) {
      ADD_FAILURE() << "cannot wipe " << path_;
    }
  }
  std::string path_;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

std::vector<Session> MakeBatch() {
  return {
      MakeSession("ALPHA", 0, kNanosPerSecond, {1, 2, 3}),
      MakeSession("BETA", kNanosPerMilli, 2 * kNanosPerSecond, {2, 4}),
      MakeSession("BETA", 3 * kNanosPerSecond, 4 * kNanosPerSecond, {5}, 1),
      MakeSession("GAMMA", 500, 600, {7, 7, 2}),
  };
}

TEST(ColdTierSegment, WriteLoadReadRoundTrip) {
  ScratchDir dir("seg_rt");
  ASSERT_EQ(::mkdir(dir.path().c_str(), 0777), 0);
  const std::string path = dir.path() + "/cold-0000000000.seg";
  const std::vector<Session> batch = MakeBatch();

  ColdSegmentIndex written;
  size_t file_bytes = 0;
  ASSERT_TRUE(WriteColdSegment(path, batch, /*first_order=*/17, &written,
                               &file_bytes));
  EXPECT_GT(file_bytes, kColdSegmentTrailerBytes);
  EXPECT_EQ(written.count, batch.size());
  EXPECT_EQ(written.first_order, 17u);
  EXPECT_EQ(written.last_order, 17u + batch.size() - 1);

  ColdSegmentIndex index;
  size_t loaded_bytes = 0;
  ASSERT_TRUE(LoadColdSegmentIndex(path, &index, &loaded_bytes));
  EXPECT_EQ(loaded_bytes, file_bytes);
  ASSERT_EQ(index.entries.size(), batch.size());
  EXPECT_EQ(index.min_time, EventTime{0});
  // BETA fragment 1 has a single record at its start time, so the segment's
  // max extent is that record, not the nominal end.
  EXPECT_EQ(index.max_time, 3 * kNanosPerSecond);

  // Per-service summary counts sessions, not records ("GAMMA" touches 7
  // twice but counts once).
  const std::vector<std::pair<uint32_t, uint64_t>> expected_counts = {
      {1, 1}, {2, 3}, {3, 1}, {4, 1}, {5, 1}, {7, 1}};
  EXPECT_EQ(index.service_counts, expected_counts);

  for (size_t i = 0; i < batch.size(); ++i) {
    const ColdSegmentEntry& e = index.entries[i];
    EXPECT_EQ(e.id, batch[i].id);
    EXPECT_EQ(e.fragment, batch[i].fragment_index);
    EXPECT_EQ(e.min_time, batch[i].MinTime());
    EXPECT_EQ(e.max_time, batch[i].MaxTime());
    Session decoded;
    ASSERT_TRUE(ReadColdSession(path, e.offset, e.length, &decoded)) << i;
    EXPECT_EQ(EncodeSessionBlock(decoded), EncodeSessionBlock(batch[i])) << i;
  }
}

TEST(ColdTierSegment, TruncationAtEveryByteFailsIndexValidation) {
  ScratchDir dir("seg_trunc");
  ASSERT_EQ(::mkdir(dir.path().c_str(), 0777), 0);
  const std::string path = dir.path() + "/cold-0000000000.seg";
  ColdSegmentIndex index;
  size_t file_bytes = 0;
  ASSERT_TRUE(WriteColdSegment(path, MakeBatch(), 0, &index, &file_bytes));
  const std::string bytes = ReadFile(path);
  ASSERT_EQ(bytes.size(), file_bytes);

  const std::string probe = dir.path() + "/cold-0000000001.seg";
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteFile(probe, bytes.substr(0, len));
    ColdSegmentIndex damaged;
    size_t damaged_bytes = 0;
    EXPECT_FALSE(LoadColdSegmentIndex(probe, &damaged, &damaged_bytes))
        << "prefix of " << len << " bytes validated";
  }
}

TEST(ColdTierSegment, EveryByteCorruptionDegradesToMissNeverWrongAnswer) {
  ScratchDir dir("seg_flip");
  ASSERT_EQ(::mkdir(dir.path().c_str(), 0777), 0);
  const std::string path = dir.path() + "/cold-0000000000.seg";
  const std::vector<Session> batch = MakeBatch();
  ColdSegmentIndex index;
  size_t file_bytes = 0;
  ASSERT_TRUE(WriteColdSegment(path, batch, 0, &index, &file_bytes));
  std::string bytes = ReadFile(path);

  // What a correct answer looks like, keyed by (id, fragment).
  std::map<std::pair<std::string, uint32_t>, std::string> canonical;
  for (const auto& s : batch) {
    canonical[{s.id, s.fragment_index}] = EncodeSessionBlock(s);
  }

  const std::string probe = dir.path() + "/cold-0000000001.seg";
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    bytes[pos] = static_cast<char>(bytes[pos] ^ 0x5A);
    WriteFile(probe, bytes);
    bytes[pos] = static_cast<char>(bytes[pos] ^ 0x5A);  // Restore.

    // The contract: the reader either rejects the damage (index validation
    // or frame CRC) or — if the flip misses everything it reads — returns
    // bytes identical to the original. Never garbage, never a crash.
    ColdSegmentIndex damaged;
    size_t damaged_bytes = 0;
    if (!LoadColdSegmentIndex(probe, &damaged, &damaged_bytes)) {
      continue;  // Degraded to a whole-segment miss.
    }
    for (const auto& e : damaged.entries) {
      Session decoded;
      if (!ReadColdSession(probe, e.offset, e.length, &decoded)) {
        continue;  // Degraded to a per-session miss.
      }
      const auto it = canonical.find({decoded.id, decoded.fragment_index});
      ASSERT_NE(it, canonical.end())
          << "flip at byte " << pos << " surfaced an unknown session";
      EXPECT_EQ(EncodeSessionBlock(decoded), it->second)
          << "flip at byte " << pos << " surfaced wrong bytes";
    }
  }

  // The restores were exact: the pristine file still validates.
  WriteFile(probe, bytes);
  ColdSegmentIndex pristine;
  size_t pristine_bytes = 0;
  EXPECT_TRUE(LoadColdSegmentIndex(probe, &pristine, &pristine_bytes));
}

TEST(ColdTierRestart, RediscoversSegmentsAndDedupes) {
  ScratchDir dir("restart");
  ColdTierOptions options;
  options.dir = dir.path();
  options.segment_target_bytes = 1;  // Every append cuts a segment quickly.

  std::vector<Session> spilled;
  for (int i = 0; i < 10; ++i) {
    spilled.push_back(MakeSession("R" + std::to_string(i),
                                  static_cast<EventTime>(i) * kNanosPerMilli,
                                  static_cast<EventTime>(i + 1) * kNanosPerMilli,
                                  {static_cast<uint32_t>(i % 3)}));
  }
  {
    ColdTier tier(options);
    ASSERT_TRUE(tier.Start());
    for (const auto& s : spilled) {
      tier.Append(Session(s));
    }
    ASSERT_TRUE(tier.FlushPending());
    const auto stats = tier.stats();
    EXPECT_EQ(stats.sessions, spilled.size());
    EXPECT_EQ(stats.pending, 0u);
    EXPECT_GE(stats.segments, 1u);
  }

  ColdTier reloaded(options);
  ASSERT_TRUE(reloaded.Start());
  const auto stats = reloaded.stats();
  EXPECT_EQ(stats.sessions, spilled.size());
  EXPECT_GE(stats.segments, 1u);
  EXPECT_EQ(stats.corrupt, 0u);
  for (const auto& s : spilled) {
    EXPECT_TRUE(reloaded.Contains(s.id, s.fragment_index));
    const auto got = reloaded.Get(s.id, s.fragment_index);
    ASSERT_TRUE(got.has_value()) << s.id;
    EXPECT_EQ(EncodeSessionBlock(*got), EncodeSessionBlock(s));
  }
  // Re-spill after restart (the replay path) dedupes against disk.
  reloaded.Append(Session(spilled[3]));
  EXPECT_EQ(reloaded.stats().dedup_dropped, 1u);
  EXPECT_EQ(reloaded.stats().sessions, spilled.size());

  std::vector<std::string> ids;
  reloaded.ForEachId([&](const std::string& id) { ids.push_back(id); });
  EXPECT_EQ(ids.size(), spilled.size());  // Distinct ids, ascending.
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
}

// Server + run thread + optional cold tier, torn down in reverse order.
class TieredServerFixture {
 public:
  TieredServerFixture(QueryServerOptions options,
                      SessionStore::Options store_options,
                      std::shared_ptr<ColdTier> cold) {
    store = std::make_shared<SessionStore>(store_options);
    metrics = std::make_shared<MetricsRegistry>();
    server = std::make_unique<QueryServer>(options, store, metrics);
    if (cold != nullptr) {
      this->cold = cold;
      server->SetColdTier(cold);
      store->SetEvictionSink(
          [cold](Session&& s) { cold->Append(std::move(s)); },
          [cold] { cold->WaitForSpace(); });
    }
    EXPECT_TRUE(server->Start());
    thread = std::thread([this] { server->Run(); });
  }
  ~TieredServerFixture() {
    server->Stop();
    thread.join();
  }

  QueryClient Client() {
    QueryClientOptions options;
    options.port = server->port();
    QueryClient client(options);
    EXPECT_TRUE(client.Connect());
    return client;
  }

  std::shared_ptr<SessionStore> store;
  std::shared_ptr<MetricsRegistry> metrics;
  std::shared_ptr<ColdTier> cold;
  std::unique_ptr<QueryServer> server;
  std::thread thread;
};

// Raw blocking socket: exact response bytes, no client-side decoding.
class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    QueryClientOptions options;
    options.port = port;
    client_ = std::make_unique<QueryClient>(options);
    EXPECT_TRUE(client_->Connect());
  }

  std::string Request(const std::string& line) {
    QueryResponse response;
    EXPECT_TRUE(client_->Execute(line, &response)) << line;
    EXPECT_TRUE(response.ok) << line << ": " << response.error;
    std::string bytes;
    for (const auto& s : response.sessions) {
      AppendSessionBlock(s, &bytes);
    }
    for (const auto& [service, count] : response.top) {
      bytes += "TOP " + std::to_string(service) + " " +
               std::to_string(count) + "\n";
    }
    if (response.truncated) {
      bytes += "#TRUNCATED\n";
    }
    bytes += FormatOk(response.count) + "\n";
    return bytes;
  }

 private:
  std::unique_ptr<QueryClient> client_;
};

TEST(ColdTierServer, TieredAnswersAreByteIdenticalToUnboundedReference) {
  // Reference: everything stays hot. Tiered: a hot window ~1/5 the data set,
  // the rest spilled cold (part durable, part still pending). Every verb must
  // serve identical bytes from either server.
  std::vector<Session> sessions;
  for (int i = 0; i < 240; ++i) {
    // Every third session shares a min_time with its neighbors, so the RANGE
    // merge's tie-break (cold before hot on equal start, eviction order among
    // cold) is exercised, not just distinct keys.
    const EventTime start = static_cast<EventTime>(i / 3) * kNanosPerMilli;
    sessions.push_back(MakeSession(
        "S" + std::to_string(i), start, start + kNanosPerMilli,
        {static_cast<uint32_t>(i % 7), 7 + static_cast<uint32_t>(i % 5)}));
    if (i % 10 == 0) {
      sessions.push_back(MakeSession("S" + std::to_string(i), start + 100,
                                     start + kNanosPerMilli, {3}, 1));
    }
  }

  ScratchDir dir("identity");
  ColdTierOptions cold_options;
  cold_options.dir = dir.path();
  cold_options.segment_target_bytes = 1u << 20;  // Spill only on flush.
  auto cold = std::make_shared<ColdTier>(cold_options);
  ASSERT_TRUE(cold->Start());

  SessionStore::Options reference_store;
  reference_store.max_bytes = 1ull << 30;
  TieredServerFixture reference({}, reference_store, nullptr);
  SessionStore::Options tiered_store;
  tiered_store.max_bytes = 24u << 10;
  TieredServerFixture tiered({}, tiered_store, cold);

  for (size_t i = 0; i < sessions.size(); ++i) {
    reference.store->Insert(Session(sessions[i]));
    tiered.store->Insert(Session(sessions[i]));
    if (i == sessions.size() / 2) {
      ASSERT_TRUE(cold->FlushPending());  // First half durable on disk...
    }
  }
  ASSERT_GT(tiered.store->stats().evicted, 0u);
  ASSERT_GE(cold->stats().segments, 1u);
  ASSERT_GT(cold->stats().pending, 0u);  // ...second half still pending.

  RawConn ref_conn(reference.server->port());
  RawConn tier_conn(tiered.server->port());
  std::vector<std::string> requests = {
      "RANGE 0 999999999999 1000",
      "RANGE 20000000 50000000 97",
      "RANGE 35000000 35000001 1000",
      "TOPK 12",
      "FRAGMENTS S0",
      "FRAGMENTS S230",
      "GET MISSING",
  };
  for (int i = 0; i < 240; ++i) {
    requests.push_back("GET S" + std::to_string(i) + " 0");
  }
  for (uint32_t s = 0; s < 12; ++s) {
    requests.push_back("SERVICE " + std::to_string(s) + " 1000");
    requests.push_back("SERVICE " + std::to_string(s) + " 17");
  }
  for (const auto& request : requests) {
    EXPECT_EQ(tier_conn.Request(request), ref_conn.Request(request))
        << request;
  }
  EXPECT_GT(cold->stats().hits, 0u);

  // After a full flush (pending drained to disk) the answers must not move.
  ASSERT_TRUE(cold->FlushPending());
  EXPECT_EQ(cold->stats().pending, 0u);
  for (const auto& request : requests) {
    EXPECT_EQ(tier_conn.Request(request), ref_conn.Request(request))
        << request << " (after flush)";
  }

  // The tiered digest equals the unbounded store's chained digest.
  std::set<std::string> ids;
  reference.store->ForEachSession(
      [&](const Session& s) { ids.insert(s.id); });
  EXPECT_EQ(TieredDigest(*tiered.store, *cold, ids),
            ChainedStoreDigest(*reference.store, ids));
}

TEST(ColdTierServer, DamagedSegmentDegradesToColdMissHotStillServes) {
  ScratchDir dir("damage");
  ColdTierOptions options;
  options.dir = dir.path();
  options.segment_target_bytes = 1u << 20;
  const Session cold_session =
      MakeSession("COLD1", 0, kNanosPerMilli, {1, 2});
  const Session cold_intact =
      MakeSession("COLD2", kNanosPerMilli, 2 * kNanosPerMilli, {3});
  {
    ColdTier writer(options);
    ASSERT_TRUE(writer.Start());
    writer.Append(Session(cold_session));
    writer.Append(Session(cold_intact));
    ASSERT_TRUE(writer.FlushPending());
  }
  // Locate COLD1's frame via the index and damage one payload byte.
  const std::string path = dir.path() + "/cold-0000000000.seg";
  ColdSegmentIndex index;
  size_t file_bytes = 0;
  ASSERT_TRUE(LoadColdSegmentIndex(path, &index, &file_bytes));
  ASSERT_EQ(index.entries.size(), 2u);
  ASSERT_EQ(index.entries[0].id, "COLD1");
  std::string bytes = ReadFile(path);
  const size_t victim = index.entries[0].offset + 12;  // Inside the payload.
  bytes[victim] = static_cast<char>(bytes[victim] ^ 0xFF);
  WriteFile(path, bytes);

  auto cold = std::make_shared<ColdTier>(options);
  ASSERT_TRUE(cold->Start());
  EXPECT_EQ(cold->stats().segments, 1u);  // Index intact: segment loads.

  TieredServerFixture tiered({}, {}, cold);
  tiered.store->Insert(MakeSession("HOT1", 0, kNanosPerMilli, {9}));

  auto client = tiered.Client();
  auto damaged = client.Get("COLD1");
  EXPECT_TRUE(damaged.ok);  // A cold miss, not an error, never a crash.
  EXPECT_TRUE(damaged.sessions.empty());
  auto intact = client.Get("COLD2");
  EXPECT_TRUE(intact.ok);
  ASSERT_EQ(intact.sessions.size(), 1u);
  EXPECT_EQ(EncodeSessionBlock(intact.sessions[0]),
            EncodeSessionBlock(cold_intact));
  auto hot = client.Get("HOT1");
  EXPECT_TRUE(hot.ok);
  ASSERT_EQ(hot.sessions.size(), 1u);  // Hot serving is unaffected.

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok);
  int64_t corrupt = -1;
  for (const auto& [name, value] : stats.stats) {
    if (name == "store_cold_corrupt") {
      corrupt = value;
    }
  }
  EXPECT_GE(corrupt, 1);  // The damage is visible in accounting.
}

TEST(ColdTierServer, WholeSegmentCorruptionIsSkippedAtStart) {
  ScratchDir dir("damage_idx");
  ColdTierOptions options;
  options.dir = dir.path();
  options.segment_target_bytes = 1u << 20;
  {
    ColdTier writer(options);
    ASSERT_TRUE(writer.Start());
    writer.Append(MakeSession("GONE", 0, kNanosPerMilli, {1}));
    ASSERT_TRUE(writer.FlushPending());
  }
  const std::string path = dir.path() + "/cold-0000000000.seg";
  std::string bytes = ReadFile(path);
  bytes[bytes.size() - 1] ^= 0x01;  // Break the trailer magic.
  WriteFile(path, bytes);

  ColdTier reloaded(options);
  ASSERT_TRUE(reloaded.Start());  // Damage is never fatal.
  EXPECT_EQ(reloaded.stats().segments, 0u);
  EXPECT_EQ(reloaded.stats().corrupt, 1u);
  EXPECT_FALSE(reloaded.Get("GONE", 0).has_value());
  // The damaged file's name stays burned: new spills pick a fresh sequence.
  reloaded.Append(MakeSession("NEW", 0, kNanosPerMilli, {1}));
  ASSERT_TRUE(reloaded.FlushPending());
  EXPECT_EQ(reloaded.stats().segments, 1u);
  EXPECT_TRUE(reloaded.Get("NEW", 0).has_value());
}

TEST(ColdTierStress, ConcurrentAppendQueryFlushIsCoherent) {
  ScratchDir dir("stress");
  ColdTierOptions options;
  options.dir = dir.path();
  options.segment_target_bytes = 8u << 10;  // Many small segments.
  ColdTier tier(options);
  ASSERT_TRUE(tier.Start());

  constexpr int kSessions = 600;
  std::thread appender([&] {
    for (int i = 0; i < kSessions; ++i) {
      tier.Append(MakeSession("X" + std::to_string(i),
                              static_cast<EventTime>(i) * 1000,
                              static_cast<EventTime>(i) * 1000 + 500,
                              {static_cast<uint32_t>(i % 5)}));
    }
  });
  std::thread flusher([&] {
    for (int i = 0; i < 5; ++i) {
      EXPECT_TRUE(tier.FlushPending());
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      for (int i = 0; i < kSessions; ++i) {
        const std::string id = "X" + std::to_string((i * 7 + r) % kSessions);
        const auto got = tier.Get(id, 0);
        if (got.has_value()) {
          EXPECT_EQ(got->id, id);
        }
        tier.CollectRange(0, 1'000'000, 10);
        tier.ServiceCounts();
      }
    });
  }
  appender.join();
  flusher.join();
  for (auto& t : readers) {
    t.join();
  }
  ASSERT_TRUE(tier.FlushPending());
  const auto stats = tier.stats();
  EXPECT_EQ(stats.sessions, static_cast<uint64_t>(kSessions));
  EXPECT_EQ(stats.pending, 0u);
  EXPECT_EQ(stats.corrupt, 0u);
  EXPECT_EQ(stats.write_failures, 0u);
  for (int i = 0; i < kSessions; ++i) {
    EXPECT_TRUE(tier.Contains("X" + std::to_string(i), 0)) << i;
  }
}

TEST(ColdTierStress, OversizedSegmentTargetIsClampedAndStillSpills) {
  // Regression: a segment target larger than the pending bound used to leave
  // the spill thread asleep (WantSpill never fired) while backpressure
  // blocked forever on a backlog only the spill thread could drain. The
  // target is clamped to max_pending_bytes, so the cycle cannot arise.
  ScratchDir dir("clamp");
  ColdTierOptions options;
  options.dir = dir.path();
  options.segment_target_bytes = 64u << 20;  // Far above the pending bound.
  options.max_pending_bytes = 8u << 10;
  ColdTier tier(options);
  ASSERT_TRUE(tier.Start());

  constexpr int kSessions = 40;  // ~1 KiB each: several times the bound.
  for (int i = 0; i < kSessions; ++i) {
    tier.Append(MakeSession("B" + std::to_string(i),
                            static_cast<EventTime>(i) * 1000,
                            static_cast<EventTime>(i) * 1000 + 500, {1}, 0,
                            /*payload_bytes=*/1024));
    tier.WaitForSpace();  // Must always return: the spill thread drains.
  }
  EXPECT_GE(tier.stats().segments, 1u);  // Spill fired without any flush.
  ASSERT_TRUE(tier.FlushPending());
  EXPECT_EQ(tier.stats().sessions, static_cast<uint64_t>(kSessions));
  EXPECT_EQ(tier.stats().pending, 0u);
}

TEST(ColdTierStress, EvictionHandoffNeverLeavesASessionInvisible) {
  // Regression: victims used to leave the hot window before entering the
  // cold tier, so a concurrent GET could find an inserted session in neither
  // tier. The sink now runs inside the store's eviction critical section:
  // from the moment Insert returns, the session is continuously visible.
  ScratchDir dir("handoff");
  ColdTierOptions cold_options;
  cold_options.dir = dir.path();
  cold_options.segment_target_bytes = 8u << 10;
  auto cold = std::make_shared<ColdTier>(cold_options);
  ASSERT_TRUE(cold->Start());

  SessionStore::Options store_options;
  store_options.max_bytes = 4u << 10;  // Almost every insert evicts.
  SessionStore store(store_options);
  store.SetEvictionSink([&](Session&& s) { cold->Append(std::move(s)); },
                        [&] { cold->WaitForSpace(); });

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 250;
  std::atomic<int> published[kWriters] = {};
  std::atomic<bool> stop_probing{false};
  auto id_of = [](int w, int i) {
    return "W" + std::to_string(w) + "-" + std::to_string(i);
  };

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        store.Insert(MakeSession(id_of(w, i),
                                 static_cast<EventTime>(i) * 1000,
                                 static_cast<EventTime>(i) * 1000 + 500,
                                 {static_cast<uint32_t>(w)}));
        published[w].store(i + 1, std::memory_order_release);
      }
    });
  }
  std::thread prober([&] {
    uint64_t step = 0;
    while (!stop_probing.load(std::memory_order_acquire)) {
      for (int w = 0; w < kWriters; ++w) {
        const int n = published[w].load(std::memory_order_acquire);
        if (n == 0) {
          continue;
        }
        const int i = static_cast<int>(step * 7 + static_cast<uint64_t>(w)) % n;
        const std::string id = id_of(w, i);
        if (!store.GetById(id, 0).has_value() &&
            !cold->Get(id, 0).has_value()) {
          ADD_FAILURE() << id << " visible in neither tier";
          return;
        }
      }
      ++step;
    }
  });
  for (auto& t : writers) {
    t.join();
  }
  stop_probing.store(true, std::memory_order_release);
  prober.join();

  // Nothing was lost: every session ended in exactly the hot ∪ cold union.
  ASSERT_TRUE(cold->FlushPending());
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kPerWriter; ++i) {
      EXPECT_TRUE(store.Contains(id_of(w, i), 0) ||
                  cold->Contains(id_of(w, i), 0))
          << id_of(w, i);
    }
  }
}

TEST(ColdTierStress, AbandonRacingAnActiveSpillStaysCrashEquivalent) {
  // Regression: Abandon() concurrent with an in-flight segment write used to
  // let the spill thread pop an already-cleared pending queue (UB) and
  // publish a segment after the simulated kill instant. Now the write is
  // discarded: whatever survives on disk must be exactly re-discoverable.
  for (int round = 0; round < 8; ++round) {
    ScratchDir dir("abandon" + std::to_string(round));
    ColdTierOptions options;
    options.dir = dir.path();
    options.segment_target_bytes = 1;  // Spill continuously, tiny segments.

    std::map<std::string, std::string> canonical;
    {
      ColdTier tier(options);
      ASSERT_TRUE(tier.Start());
      for (int i = 0; i < 60; ++i) {
        Session s = MakeSession("A" + std::to_string(i),
                                static_cast<EventTime>(i) * 1000,
                                static_cast<EventTime>(i) * 1000 + 500,
                                {static_cast<uint32_t>(i % 3)});
        canonical[s.id] = EncodeSessionBlock(s);
        tier.Append(std::move(s));
        if (i == 29 && round % 2 == 1) {
          // Odd rounds guarantee durable segments before the race, so the
          // reload verification below always has sessions to check; even
          // rounds leave the Abandon/spill interleaving fully open.
          ASSERT_TRUE(tier.FlushPending());
        }
      }
      tier.Abandon();  // Lands mid-write for at least some rounds.
      EXPECT_EQ(tier.stats().pending, 0u);
    }

    // The kill instant left only whole, valid segments: a restart loads them
    // all and serves back byte-identical sessions, nothing corrupt.
    ColdTier reloaded(options);
    ASSERT_TRUE(reloaded.Start());
    EXPECT_EQ(reloaded.stats().corrupt, 0u);
    EXPECT_LE(reloaded.stats().sessions, canonical.size());
    if (round % 2 == 1) {
      EXPECT_GE(reloaded.stats().sessions, 30u);
    }
    // ForEachId holds the tier lock across the callback — collect first,
    // read after, or the Get() reentry deadlocks.
    std::vector<std::string> ids;
    reloaded.ForEachId([&](const std::string& id) { ids.push_back(id); });
    for (const auto& id : ids) {
      const auto got = reloaded.Get(id, 0);
      ASSERT_TRUE(got.has_value()) << id;
      EXPECT_EQ(EncodeSessionBlock(*got), canonical.at(id)) << id;
    }
  }
}

TEST(ColdTierServer, TopkDoesNotDoubleCountPostRestoreOverlap) {
  // Post-restore a session can be hot AND durable cold at once (the snapshot
  // restored it hot while a pre-crash flush made it cold). TOPK must count
  // it once per touched service, like the unbounded reference would.
  ScratchDir dir("topk_overlap");
  ColdTierOptions cold_options;
  cold_options.dir = dir.path();
  cold_options.segment_target_bytes = 1u << 20;
  auto cold = std::make_shared<ColdTier>(cold_options);
  ASSERT_TRUE(cold->Start());

  const Session both = MakeSession("BOTH", 0, kNanosPerMilli, {1, 2});
  const Session hot_only =
      MakeSession("HOT", kNanosPerMilli, 2 * kNanosPerMilli, {1});
  const Session cold_only =
      MakeSession("COLDONLY", 2 * kNanosPerMilli, 3 * kNanosPerMilli, {2});
  cold->Append(Session(both));
  cold->Append(Session(cold_only));
  ASSERT_TRUE(cold->FlushPending());

  TieredServerFixture tiered({}, {}, cold);  // Hot budget: nothing evicts.
  tiered.store->Insert(Session(both));  // "Restored" copy of a cold session.
  tiered.store->Insert(Session(hot_only));

  auto client = tiered.Client();
  QueryResponse response;
  ASSERT_TRUE(client.Execute("TOPK 10", &response));
  ASSERT_TRUE(response.ok) << response.error;
  const std::vector<std::pair<uint32_t, uint64_t>> expected = {{1, 2}, {2, 2}};
  EXPECT_EQ(response.top, expected);  // Not {1,3},{2,3}: BOTH counted once.
}

TEST(ColdTierRangeBudget, HundredThousandSessionColdTierStreamsWithinBudget) {
  // Satellite regression: RANGE over a big cold tier must stream candidates
  // under the response budget — reading only the frames it actually sends —
  // and answer #TRUNCATED, never materialize the whole matching set.
  ScratchDir dir("budget");
  ColdTierOptions cold_options;
  cold_options.dir = dir.path();
  cold_options.segment_target_bytes = 1u << 20;
  cold_options.max_pending_bytes = 256u << 20;
  auto cold = std::make_shared<ColdTier>(cold_options);
  ASSERT_TRUE(cold->Start());

  constexpr size_t kCold = 100'000;
  for (size_t i = 0; i < kCold; ++i) {
    cold->Append(MakeSession("C" + std::to_string(i),
                             static_cast<EventTime>(i) * 1000,
                             static_cast<EventTime>(i) * 1000 + 500,
                             {static_cast<uint32_t>(i % 32)}, 0,
                             /*payload_bytes=*/4));
  }
  ASSERT_TRUE(cold->FlushPending());
  ASSERT_EQ(cold->stats().sessions, kCold);
  ASSERT_GE(cold->stats().segments, 2u);
  const uint64_t hits_before = cold->stats().hits;

  QueryServerOptions options;
  options.max_conn_buffer_bytes = 32u << 10;  // The response budget.
  TieredServerFixture tiered(options, {}, cold);
  auto client = tiered.Client();

  QueryResponse all;
  ASSERT_TRUE(client.Execute("RANGE 0 999999999999 100000", &all));
  ASSERT_TRUE(all.ok) << all.error;
  EXPECT_TRUE(all.truncated);  // 100k sessions >> 32 KiB budget.
  EXPECT_GE(all.count, 1u);
  EXPECT_LT(all.count, 2'000u);
  EXPECT_EQ(all.sessions.size(), all.count);
  for (size_t i = 0; i < all.sessions.size(); ++i) {
    // Time-ordered from the front of the tier.
    EXPECT_EQ(all.sessions[i].id, "C" + std::to_string(i));
  }
  // The budget bounded the frame reads too: only streamed sessions (plus at
  // most the one that tripped the budget) were ever materialized.
  EXPECT_LE(cold->stats().hits - hits_before, all.count + 1);

  QueryResponse limited;
  ASSERT_TRUE(client.Execute("RANGE 0 999999999999 40", &limited));
  ASSERT_TRUE(limited.ok) << limited.error;
  EXPECT_FALSE(limited.truncated);
  ASSERT_EQ(limited.sessions.size(), 40u);
  for (size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(limited.sessions[i].id, "C" + std::to_string(i));
  }

  // A narrow window deep inside the tier stays cheap: index-pruned, exact.
  QueryResponse window;
  ASSERT_TRUE(
      client.Execute("RANGE 50000000 50010000 1000", &window));
  ASSERT_TRUE(window.ok) << window.error;
  EXPECT_FALSE(window.truncated);
  ASSERT_EQ(window.sessions.size(), 10u);
  EXPECT_EQ(window.sessions[0].id, "C50000");
}

}  // namespace
}  // namespace ts
