// Tests for the offline (batch) sessionizer.
#include <gtest/gtest.h>

#include "src/offline/offline_sessionizer.h"

namespace ts {
namespace {

LogRecord Rec(const std::string& session, EventTime t, const char* txn = "1") {
  LogRecord r;
  r.time = t;
  r.session_id = session;
  r.txn_id = *TxnId::Parse(txn);
  return r;
}

TEST(Offline, GroupsBySessionAndSortsByTime) {
  std::vector<LogRecord> records = {
      Rec("B", 30), Rec("A", 20), Rec("A", 10), Rec("B", 5), Rec("A", 15),
  };
  auto sessions = OfflineSessionizer::Sessionize(std::move(records));
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].id, "A");
  ASSERT_EQ(sessions[0].records.size(), 3u);
  EXPECT_EQ(sessions[0].records[0].time, 10);
  EXPECT_EQ(sessions[0].records[2].time, 20);
  EXPECT_EQ(sessions[1].id, "B");
  EXPECT_EQ(sessions[1].records.size(), 2u);
}

TEST(Offline, NoSplitWithoutInactivityOption) {
  // A session idle for an hour still comes back as one piece: offline
  // grouping has an unbounded horizon (§2.2).
  std::vector<LogRecord> records = {Rec("A", 0),
                                    Rec("A", 3600 * kNanosPerSecond)};
  auto sessions = OfflineSessionizer::Sessionize(std::move(records));
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].records.size(), 2u);
  EXPECT_EQ(sessions[0].fragment_index, 0u);
}

TEST(Offline, InactivitySplitFragmentsAtLargeGaps) {
  OfflineOptions options;
  options.inactivity_split_ns = 5 * kNanosPerSecond;
  std::vector<LogRecord> records = {
      Rec("A", 0), Rec("A", 1 * kNanosPerSecond),
      Rec("A", 20 * kNanosPerSecond),  // 19 s gap: split.
      Rec("A", 22 * kNanosPerSecond),
      Rec("A", 60 * kNanosPerSecond),  // 38 s gap: split.
  };
  auto sessions = OfflineSessionizer::Sessionize(std::move(records), options);
  ASSERT_EQ(sessions.size(), 3u);
  EXPECT_EQ(sessions[0].fragment_index, 0u);
  EXPECT_EQ(sessions[0].records.size(), 2u);
  EXPECT_EQ(sessions[1].fragment_index, 1u);
  EXPECT_EQ(sessions[1].records.size(), 2u);
  EXPECT_EQ(sessions[2].fragment_index, 2u);
  EXPECT_EQ(sessions[2].records.size(), 1u);
}

TEST(Offline, GapExactlyAtThresholdDoesNotSplit) {
  OfflineOptions options;
  options.inactivity_split_ns = 10;
  std::vector<LogRecord> records = {Rec("A", 0), Rec("A", 10), Rec("A", 21)};
  auto sessions = OfflineSessionizer::Sessionize(std::move(records), options);
  ASSERT_EQ(sessions.size(), 2u);  // Only the 11-unit gap splits.
  EXPECT_EQ(sessions[0].records.size(), 2u);
}

TEST(Offline, EpochFieldsDerivedFromEventTimes) {
  std::vector<LogRecord> records = {Rec("A", kNanosPerSecond / 2),
                                    Rec("A", 5 * kNanosPerSecond)};
  auto sessions = OfflineSessionizer::Sessionize(std::move(records));
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].first_epoch, 0u);
  EXPECT_EQ(sessions[0].last_epoch, 5u);
}

TEST(Offline, EmptyInputYieldsNoSessions) {
  auto sessions = OfflineSessionizer::Sessionize({});
  EXPECT_TRUE(sessions.empty());
}

}  // namespace
}  // namespace ts
