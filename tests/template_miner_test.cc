// Tests for ts_parse's online template miner: stable ids, wildcard promotion,
// the determinism contract (pure function of the payload sequence, exact
// state export/import), bounded memory under adversarial high-cardinality
// streams, and worker-count-invariant digests when mining runs inside the
// live pipeline.
#include <cstdio>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/analytics/session_digest.h"
#include "src/analytics/session_store.h"
#include "src/common/rng.h"
#include "src/core/live_pipeline.h"
#include "src/log/wire_format.h"
#include "src/parse/template_miner.h"
#include "src/workload/generator.h"

namespace ts {
namespace {

TEST(TemplateMiner, StableIdsForRepeatedShape) {
  TemplateMiner miner;
  std::vector<std::string_view> vars;
  const uint32_t a1 = miner.Mine("connection from 10.0.0.1 accepted", &vars);
  EXPECT_GT(a1, 0u);
  ASSERT_EQ(vars.size(), 1u);
  EXPECT_EQ(vars[0], "10.0.0.1");
  const uint32_t a2 = miner.Mine("connection from 10.0.9.7 accepted", &vars);
  EXPECT_EQ(a1, a2);
  ASSERT_EQ(vars.size(), 1u);
  EXPECT_EQ(vars[0], "10.0.9.7");
  // Different token count: a different template.
  const uint32_t b = miner.Mine("connection from 10.0.0.1 accepted twice", &vars);
  EXPECT_NE(a1, b);
  EXPECT_EQ(miner.payloads_mined(), 3u);
}

TEST(TemplateMiner, WildcardPromotionOnVariantTokens) {
  TemplateMiner miner;
  std::vector<std::string_view> vars;
  const uint32_t a = miner.Mine("request served from cache alpha", &vars);
  EXPECT_TRUE(vars.empty());
  // Same shape, one token differs: joins the group, that position becomes a
  // wildcard and the differing token surfaces as the variable.
  const uint32_t b = miner.Mine("request served from cache beta", &vars);
  EXPECT_EQ(a, b);
  ASSERT_EQ(vars.size(), 1u);
  EXPECT_EQ(vars[0], "beta");
  // The promoted position now extracts from earlier-style payloads too.
  const uint32_t c = miner.Mine("request served from cache alpha", &vars);
  EXPECT_EQ(a, c);
  ASSERT_EQ(vars.size(), 1u);
  EXPECT_EQ(vars[0], "alpha");

  auto snapshot = miner.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].id, a);
  EXPECT_EQ(snapshot[0].hits, 3u);
  EXPECT_EQ(snapshot[0].text, "request served from cache <*>");
}

TEST(TemplateMiner, DigitTokensPreWildcarded) {
  TemplateMiner miner;
  std::vector<std::string_view> vars;
  miner.Mine("served 17 requests in 250ms", &vars);
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars[0], "17");
  EXPECT_EQ(vars[1], "250ms");
  auto snapshot = miner.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].text, "served <*> requests in <*>");
}

TEST(TemplateMiner, CatchAllForEmptyAndOverlongPayloads) {
  TemplateMinerOptions options;
  options.max_tokens = 4;
  TemplateMiner miner(options);
  std::vector<std::string_view> vars;
  EXPECT_EQ(miner.Mine("", &vars), 0u);
  EXPECT_TRUE(vars.empty());
  EXPECT_EQ(miner.Mine("one two three four five", &vars), 0u);
  // The whole payload survives as one variable — byte-exact, so a rewrite
  // of a catch-all line ("#0 <payload>") never loses information.
  ASSERT_EQ(vars.size(), 1u);
  EXPECT_EQ(vars[0], "one two three four five");
  EXPECT_EQ(miner.catch_all_hits(), 2u);
  auto snapshot = miner.Snapshot();
  ASSERT_FALSE(snapshot.empty());
  EXPECT_EQ(snapshot[0].id, 0u);
  EXPECT_EQ(snapshot[0].hits, 2u);
}

TEST(TemplateMiner, MineAndRewriteRoundTripsIdAndVars) {
  TemplateMiner miner;
  std::string out;
  const uint32_t id =
      miner.MineAndRewrite("txn 00ff12ab committed in 12ms", &out);
  EXPECT_EQ(out, "#" + std::to_string(id) + " 00ff12ab 12ms");
  // Rewritten form is much shorter than the raw line for long templates.
  std::string long_line =
      "scheduler rebalance pass completed for partition group with";
  long_line += " leader replica set unchanged after 42 seconds";
  out.clear();
  miner.MineAndRewrite(long_line, &out);
  EXPECT_LT(out.size(), long_line.size());
}

TEST(TemplateMiner, DeterministicStateAcrossInterleavedInstances) {
  // The miner's full state is a pure function of the payload sequence.
  Rng rng(99);
  std::vector<std::string> payloads;
  for (int i = 0; i < 5000; ++i) {
    std::string p = "svc";
    p += std::to_string(rng.NextBelow(20));
    p += " handled request ";
    p += std::to_string(rng.NextBelow(1 << 30));
    if (rng.NextBool(0.3)) {
      p += " with retries";
    }
    payloads.push_back(std::move(p));
  }
  TemplateMiner m1, m2;
  for (const auto& p : payloads) {
    m1.Mine(p);
  }
  for (const auto& p : payloads) {
    m2.Mine(p);
  }
  EXPECT_TRUE(m1.Export() == m2.Export());
}

TEST(TemplateMiner, ExportImportResumesExactly) {
  // Import(Export at N) then feeding [N..) must equal the uninterrupted run:
  // the checkpoint 'T' frame relies on this.
  Rng rng(1234);
  std::vector<std::string> payloads;
  for (int i = 0; i < 4000; ++i) {
    std::string p = "node ";
    p += std::to_string(rng.NextBelow(64));
    p += rng.NextBool(0.5) ? " joined ring at position " : " left ring from ";
    p += std::to_string(rng.NextBelow(1000));
    payloads.push_back(std::move(p));
  }
  TemplateMiner full;
  TemplateMiner prefix;
  const size_t cut = payloads.size() / 2;
  for (size_t i = 0; i < cut; ++i) {
    full.Mine(payloads[i]);
    prefix.Mine(payloads[i]);
  }
  TemplateMiner resumed;
  ASSERT_TRUE(resumed.Import(prefix.Export()));
  std::vector<std::string_view> v1, v2;
  for (size_t i = cut; i < payloads.size(); ++i) {
    const uint32_t id_full = full.Mine(payloads[i], &v1);
    const uint32_t id_resumed = resumed.Mine(payloads[i], &v2);
    ASSERT_EQ(id_full, id_resumed) << "diverged at payload " << i;
    ASSERT_EQ(v1, v2);
  }
  EXPECT_TRUE(full.Export() == resumed.Export());
  EXPECT_EQ(full.payloads_mined(), resumed.payloads_mined());
}

TEST(TemplateMiner, ImportRejectsMalformedState) {
  TemplateMiner source;
  source.Mine("alpha beta gamma");
  TemplateMinerState state = source.Export();
  ASSERT_FALSE(state.nodes.empty());
  state.nodes[0].parent = 7;  // Root must have no parent.
  TemplateMiner miner;
  EXPECT_FALSE(miner.Import(state));
  // A failed import leaves the miner empty, not half-restored.
  EXPECT_EQ(miner.node_count(), 0u);
  EXPECT_EQ(miner.Mine("alpha beta gamma"), 1u);

  TemplateMinerState mismatched = source.Export();
  ASSERT_FALSE(mismatched.groups.empty());
  mismatched.groups[0].wildcard.push_back(1);  // tokens/wildcard length skew.
  TemplateMiner other;
  EXPECT_FALSE(other.Import(mismatched));
}

TEST(TemplateMiner, NodeBudgetHoldsUnderAdversarialHighCardinalityStream) {
  // 1M records whose leading tokens and token counts are all distinct-ish:
  // the worst case for a prefix tree. The node count must never exceed the
  // budget; overflow traffic lands in wildcard routes and the catch-all.
  TemplateMinerOptions options;
  options.max_nodes = 512;
  TemplateMiner miner(options);
  Rng rng(7);
  std::string payload;
  for (int i = 0; i < 1'000'000; ++i) {
    payload.clear();
    // Unique leading token, no digits (digit tokens would self-wildcard and
    // make the attack easy to absorb).
    payload += "k";
    uint64_t v = static_cast<uint64_t>(i);
    do {
      payload += static_cast<char>('a' + (v % 26));
      v /= 26;
    } while (v > 0);
    const int extra = static_cast<int>(rng.NextBelow(6));
    for (int t = 0; t < extra; ++t) {
      payload += " w";
      payload += static_cast<char>('a' + static_cast<char>(rng.NextBelow(26)));
    }
    miner.Mine(payload);
    ASSERT_LE(miner.node_count(), options.max_nodes)
        << "node budget exceeded at record " << i;
  }
  EXPECT_EQ(miner.payloads_mined(), 1'000'000u);
  EXPECT_LE(miner.node_count(), options.max_nodes);
  // The miner still made progress: hot shapes got ids, the rest fell back.
  EXPECT_GT(miner.template_count(), 0u);
}

TEST(TemplateMiner, SnapshotHitsSumToPayloadsMined) {
  TemplateMiner miner;
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    std::string p = rng.NextBool(0.5) ? "cache hit for key " : "cache miss for key ";
    p += std::to_string(rng.NextBelow(100));
    miner.Mine(p);
  }
  uint64_t total = 0;
  for (const auto& info : miner.Snapshot()) {
    total += info.hits;
  }
  EXPECT_EQ(total, miner.payloads_mined());
}

// Live-pipeline integration: mining happens on the ingest thread before the
// shard exchange, so the closed-session stream, the store's query answers,
// and the mined dictionary must be byte-identical for every worker count.
struct PipelineRun {
  uint64_t session_digest = 0;
  uint64_t store_digest = 0;
  uint64_t sessions = 0;
  size_t templates = 0;
  size_t nodes = 0;
  std::vector<TemplateInfo> dictionary;
};

PipelineRun RunMinedPipeline(const std::vector<std::string>& lines,
                             size_t workers) {
  PipelineRun run;
  SessionStore::Options store_options;
  store_options.max_bytes = 1ull << 30;
  SessionStore store(store_options);
  std::mutex mu;
  std::set<std::string> ids;
  LivePipelineOptions options;
  options.workers = workers;
  options.inactivity_ns = 2 * kNanosPerSecond;
  options.mine_templates = true;
  LivePipeline pipeline(options, [&](Session&& s) {
    thread_local std::string scratch;
    const uint64_t d = SessionDigest(s, &scratch);
    {
      std::lock_guard<std::mutex> lock(mu);
      run.session_digest ^= d;
      ids.insert(s.id);
    }
    store.Insert(std::move(s));
  });
  for (const auto& l : lines) {
    pipeline.FeedLine(l);
  }
  pipeline.Finish();
  run.store_digest = ChainedStoreDigest(store, ids);
  run.sessions = store.stats().sessions;
  run.templates = pipeline.template_count();
  run.nodes = pipeline.template_nodes();
  run.dictionary = pipeline.TemplateSnapshot();
  return run;
}

std::vector<std::string> FreeTextLines(uint64_t seed, double rate,
                                       int seconds) {
  GeneratorConfig config;
  config.seed = seed;
  config.duration_ns = static_cast<EventTime>(seconds) * kNanosPerSecond;
  config.target_records_per_sec = rate;
  config.free_text_payloads = true;
  TraceGenerator gen(config);
  Epoch epoch = 0;
  std::vector<LogRecord> records;
  std::vector<std::string> lines;
  std::string line;
  while (gen.NextEpoch(&epoch, &records)) {
    for (const auto& r : records) {
      line.clear();
      AppendWireFormat(r, &line);
      lines.push_back(line);
    }
  }
  return lines;
}

TEST(TemplatePipeline, MinedOutputInvariantAcrossWorkerCounts) {
  const auto lines = FreeTextLines(/*seed=*/11, /*rate=*/4000, /*seconds=*/4);
  ASSERT_GT(lines.size(), 5000u);
  const PipelineRun one = RunMinedPipeline(lines, 1);
  ASSERT_GT(one.sessions, 0u);
  ASSERT_GT(one.templates, 0u);
  for (size_t workers : {2u, 4u}) {
    const PipelineRun other = RunMinedPipeline(lines, workers);
    EXPECT_EQ(one.session_digest, other.session_digest) << workers;
    EXPECT_EQ(one.store_digest, other.store_digest) << workers;
    EXPECT_EQ(one.sessions, other.sessions) << workers;
    EXPECT_EQ(one.templates, other.templates) << workers;
    EXPECT_EQ(one.nodes, other.nodes) << workers;
    ASSERT_EQ(one.dictionary.size(), other.dictionary.size()) << workers;
    for (size_t i = 0; i < one.dictionary.size(); ++i) {
      EXPECT_EQ(one.dictionary[i].id, other.dictionary[i].id);
      EXPECT_EQ(one.dictionary[i].hits, other.dictionary[i].hits);
      EXPECT_EQ(one.dictionary[i].text, other.dictionary[i].text);
    }
  }
}

TEST(TemplatePipeline, MiningShrinksStoreBytes) {
  const auto lines = FreeTextLines(/*seed=*/12, /*rate=*/3000, /*seconds=*/3);
  SessionStore::Options store_options;
  store_options.max_bytes = 1ull << 30;
  uint64_t bytes[2] = {0, 0};
  uint64_t sessions[2] = {0, 0};
  for (int mined = 0; mined < 2; ++mined) {
    SessionStore store(store_options);
    LivePipelineOptions options;
    options.workers = 2;
    options.inactivity_ns = 2 * kNanosPerSecond;
    options.mine_templates = mined == 1;
    LivePipeline pipeline(options,
                          [&](Session&& s) { store.Insert(std::move(s)); });
    for (const auto& l : lines) {
      pipeline.FeedLine(l);
    }
    pipeline.Finish();
    bytes[mined] = store.stats().bytes;
    sessions[mined] = store.stats().sessions;
  }
  ASSERT_GT(sessions[0], 0u);
  EXPECT_EQ(sessions[0], sessions[1]);  // Mining must not change sessions.
  // The free-text workload is dominated by constant template text, so the
  // rewritten store must be at least 3x smaller per session.
  EXPECT_GE(static_cast<double>(bytes[0]),
            3.0 * static_cast<double>(bytes[1]));
}

TEST(TemplatePipeline, ShortLinesPassThroughUnmined) {
  // Lines with fewer than the wire format's six '|' separators carry no
  // payload field; mining must leave them alone (they count as parse
  // failures downstream, same as without mining).
  LivePipelineOptions options;
  options.workers = 1;
  options.mine_templates = true;
  LivePipeline pipeline(options, [](Session&&) {});
  pipeline.FeedLine("not|a|wire|record");
  pipeline.FeedLine("");
  pipeline.Finish();
  EXPECT_EQ(pipeline.parse_failures(), 1u);
  EXPECT_EQ(pipeline.template_count(), 0u);
}

}  // namespace
}  // namespace ts
