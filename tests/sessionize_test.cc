// Tests for the sessionization operator (§4.2): inactivity-window semantics,
// fragmentation, exact-boundary behaviour, multi-worker partitioning, metrics.
#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/analytics/collectors.h"
#include "src/core/sessionize.h"
#include "src/timely/timely.h"

namespace ts {
namespace {

LogRecord Rec(const std::string& session, Epoch epoch, const char* txn = "1",
              EventTime offset_ns = 0) {
  LogRecord r;
  r.time = static_cast<EventTime>(epoch) * kNanosPerSecond + offset_ns;
  r.session_id = session;
  r.txn_id = *TxnId::Parse(txn);
  r.service = 1;
  return r;
}

struct SessionizeRun {
  std::vector<Session> sessions;
  SessionizeMetrics metrics;  // Worker 0's metrics (single-worker runs).
};

// Feeds `by_epoch` (epoch -> records) from worker 0 and returns all emitted
// sessions, sorted by (id, fragment).
SessionizeRun RunSessionize(size_t workers, const SessionizeOptions& options,
                            const std::map<Epoch, std::vector<LogRecord>>& by_epoch) {
  auto collector = std::make_shared<ConcurrentCollector<Session>>();
  auto metrics_out = std::make_shared<SessionizeMetrics>();

  Computation::Options copts;
  copts.workers = workers;
  Computation::Run(copts, [&](Scope& scope) {
    auto [input, stream] = scope.NewInput<LogRecord>("logs");
    auto [sessions, metrics] = Sessionize(scope, stream, options);
    CollectInto<Session>(scope, sessions, collector, "collect");

    auto session = std::make_shared<InputSession<LogRecord>>(input);
    if (scope.worker_index() == 0) {
      auto it = std::make_shared<std::map<Epoch, std::vector<LogRecord>>::const_iterator>(
          by_epoch.begin());
      scope.AddDriver([session, it, &by_epoch]() mutable -> DriverStatus {
        if (*it == by_epoch.end()) {
          session->Close();
          return DriverStatus::kFinished;
        }
        const Epoch target = (*it)->first;
        if (target > session->current_epoch()) {
          session->AdvanceTo(target);
        }
        session->GiveBatch((*it)->second);
        ++*it;
        return DriverStatus::kWorked;
      });
    } else {
      scope.AddDriver([session]() -> DriverStatus {
        session->Close();
        return DriverStatus::kFinished;
      });
    }
    if (scope.worker_index() == 0) {
      scope.AddStepCallback([metrics = metrics, metrics_out] { *metrics_out = *metrics; });
    }
  });

  SessionizeRun run;
  run.sessions = std::move(collector->items());
  std::sort(run.sessions.begin(), run.sessions.end(),
            [](const Session& a, const Session& b) {
              return std::tie(a.id, a.fragment_index) <
                     std::tie(b.id, b.fragment_index);
            });
  run.metrics = *metrics_out;
  return run;
}

TEST(Sessionize, FlushesAfterInactivity) {
  SessionizeOptions options;
  options.inactivity_epochs = 2;
  auto run = RunSessionize(1, options,
                           {{0, {Rec("A", 0), Rec("A", 0, "1-1")}},
                            {1, {Rec("A", 1, "1-2")}}});
  ASSERT_EQ(run.sessions.size(), 1u);
  const Session& s = run.sessions[0];
  EXPECT_EQ(s.id, "A");
  EXPECT_EQ(s.records.size(), 3u);
  EXPECT_EQ(s.first_epoch, 0u);
  EXPECT_EQ(s.last_epoch, 1u);
  EXPECT_EQ(s.closed_at, 3u);  // last activity (1) + inactivity (2).
  EXPECT_EQ(s.fragment_index, 0u);
}

TEST(Sessionize, ActivityExtendsTheWindow) {
  SessionizeOptions options;
  options.inactivity_epochs = 3;
  // Activity at 0, 2, 4: each arrival within the window keeps it open.
  auto run = RunSessionize(
      1, options, {{0, {Rec("A", 0)}}, {2, {Rec("A", 2)}}, {4, {Rec("A", 4)}}});
  ASSERT_EQ(run.sessions.size(), 1u);
  EXPECT_EQ(run.sessions[0].records.size(), 3u);
  EXPECT_EQ(run.sessions[0].closed_at, 7u);
}

TEST(Sessionize, GapEqualToTimeoutDoesNotSplit) {
  SessionizeOptions options;
  options.inactivity_epochs = 3;
  // Last activity epoch 0; next at epoch 3 == 0 + timeout. Data for an epoch
  // is processed before that epoch's notification fires, so the session
  // survives; only a gap strictly greater than the timeout splits.
  auto run = RunSessionize(1, options, {{0, {Rec("A", 0)}}, {3, {Rec("A", 3)}}});
  ASSERT_EQ(run.sessions.size(), 1u);
  EXPECT_EQ(run.sessions[0].records.size(), 2u);
}

TEST(Sessionize, GapBeyondTimeoutFragmentsSession) {
  SessionizeOptions options;
  options.inactivity_epochs = 2;
  options.track_fragments = true;
  auto run = RunSessionize(
      1, options, {{0, {Rec("A", 0)}}, {1, {Rec("A", 1)}}, {10, {Rec("A", 10)}}});
  ASSERT_EQ(run.sessions.size(), 2u);
  EXPECT_EQ(run.sessions[0].fragment_index, 0u);
  EXPECT_EQ(run.sessions[0].records.size(), 2u);
  EXPECT_EQ(run.sessions[0].closed_at, 3u);
  EXPECT_EQ(run.sessions[1].fragment_index, 1u);
  EXPECT_EQ(run.sessions[1].records.size(), 1u);
  EXPECT_EQ(run.metrics.fragments_out, 1u);
}

TEST(Sessionize, InterleavedSessionsSeparateCleanly) {
  SessionizeOptions options;
  options.inactivity_epochs = 2;
  auto run = RunSessionize(1, options,
                           {{0, {Rec("A", 0), Rec("B", 0)}},
                            {1, {Rec("B", 1), Rec("A", 1)}},
                            {5, {Rec("C", 5)}}});
  ASSERT_EQ(run.sessions.size(), 3u);
  EXPECT_EQ(run.sessions[0].id, "A");
  EXPECT_EQ(run.sessions[0].records.size(), 2u);
  EXPECT_EQ(run.sessions[1].id, "B");
  EXPECT_EQ(run.sessions[1].records.size(), 2u);
  EXPECT_EQ(run.sessions[2].id, "C");
  EXPECT_EQ(run.sessions[2].records.size(), 1u);
}

TEST(Sessionize, MetricsTrackStateAndOutput) {
  SessionizeOptions options;
  options.inactivity_epochs = 1;
  auto run = RunSessionize(1, options,
                           {{0, {Rec("A", 0), Rec("B", 0), Rec("A", 0, "1-1")}}});
  EXPECT_EQ(run.metrics.records_in, 3u);
  EXPECT_EQ(run.metrics.sessions_out, 2u);
  EXPECT_EQ(run.metrics.fragments_out, 0u);
  EXPECT_EQ(run.metrics.peak_inflight_sessions, 2u);
  EXPECT_GT(run.metrics.peak_state_bytes, 0u);
}

class SessionizeWorkers : public ::testing::TestWithParam<size_t> {};

TEST_P(SessionizeWorkers, PartitionedSessionsAllEmittedExactlyOnce) {
  const size_t workers = GetParam();
  SessionizeOptions options;
  options.inactivity_epochs = 2;

  std::map<Epoch, std::vector<LogRecord>> by_epoch;
  constexpr int kSessions = 64;
  for (int s = 0; s < kSessions; ++s) {
    const std::string id = "SESS-" + std::to_string(s);
    // Each session has records in three consecutive epochs starting at s % 4.
    const Epoch base = static_cast<Epoch>(s % 4);
    for (Epoch e = base; e < base + 3; ++e) {
      by_epoch[e].push_back(Rec(id, e, "1"));
      by_epoch[e].push_back(Rec(id, e, "1-1", 1000));
    }
  }
  auto run = RunSessionize(workers, options, by_epoch);
  ASSERT_EQ(run.sessions.size(), static_cast<size_t>(kSessions));
  for (const auto& s : run.sessions) {
    EXPECT_EQ(s.records.size(), 6u) << s.id;
    EXPECT_EQ(s.fragment_index, 0u) << s.id;
    // Records arrive in epoch order within the session.
    for (size_t i = 1; i < s.records.size(); ++i) {
      EXPECT_LE(s.records[i - 1].time / kNanosPerSecond,
                s.records[i].time / kNanosPerSecond);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, SessionizeWorkers,
                         ::testing::Values(1, 2, 3, 4));

TEST(Sessionize, LongLivedSessionSurvivesManyEpochs) {
  SessionizeOptions options;
  options.inactivity_epochs = 3;
  std::map<Epoch, std::vector<LogRecord>> by_epoch;
  for (Epoch e = 0; e < 50; e += 2) {
    by_epoch[e].push_back(Rec("LONG", e));
  }
  auto run = RunSessionize(1, options, by_epoch);
  ASSERT_EQ(run.sessions.size(), 1u);
  EXPECT_EQ(run.sessions[0].records.size(), 25u);
  EXPECT_EQ(run.sessions[0].first_epoch, 0u);
  EXPECT_EQ(run.sessions[0].last_epoch, 48u);
}

}  // namespace
}  // namespace ts
