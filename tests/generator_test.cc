// Tests for the synthetic trace generator: determinism, stream ordering, and —
// most importantly — calibration against the statistics the paper publishes
// for the real Amadeus trace (Table 1 and §5).
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/log/wire_format.h"
#include "src/workload/generator.h"

namespace ts {
namespace {

// FNV-1a over every wire line of a trace: any byte-level nondeterminism in
// the generator (including payload content) changes the digest.
uint64_t TraceDigest(const GeneratorConfig& config) {
  TraceGenerator gen(config);
  Epoch epoch = 0;
  std::vector<LogRecord> records;
  std::string line;
  uint64_t h = 1469598103934665603ull;
  while (gen.NextEpoch(&epoch, &records)) {
    for (const auto& r : records) {
      line.clear();
      AppendWireFormat(r, &line);
      line.push_back('\n');
      for (const char c : line) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
      }
    }
  }
  return h;
}

GeneratorConfig SmallConfig() {
  GeneratorConfig config;
  config.seed = 1234;
  config.duration_ns = 20 * kNanosPerSecond;
  config.target_records_per_sec = 20'000;
  config.collect_distributions = true;
  return config;
}

TEST(Generator, DeterministicAcrossRuns) {
  GeneratorConfig config = SmallConfig();
  config.duration_ns = 3 * kNanosPerSecond;
  TraceGenerator g1(config);
  TraceGenerator g2(config);
  Epoch e1 = 0, e2 = 0;
  std::vector<LogRecord> r1, r2;
  while (true) {
    const bool more1 = g1.NextEpoch(&e1, &r1);
    const bool more2 = g2.NextEpoch(&e2, &r2);
    ASSERT_EQ(more1, more2);
    if (!more1) {
      break;
    }
    ASSERT_EQ(e1, e2);
    ASSERT_EQ(r1.size(), r2.size());
    for (size_t i = 0; i < r1.size(); ++i) {
      ASSERT_EQ(r1[i].time, r2[i].time);
      ASSERT_EQ(r1[i].session_id, r2[i].session_id);
      ASSERT_EQ(r1[i].txn_id, r2[i].txn_id);
    }
  }
  EXPECT_EQ(g1.stats().annotations, g2.stats().annotations);
}

TEST(Generator, PayloadsByteIdenticalForSameSeedInBothModes) {
  // Same seed => byte-identical trace including every payload byte, in the
  // default filler mode and in --free_text mode.
  for (const bool free_text : {false, true}) {
    GeneratorConfig config = SmallConfig();
    config.duration_ns = 3 * kNanosPerSecond;
    config.free_text_payloads = free_text;
    EXPECT_EQ(TraceDigest(config), TraceDigest(config))
        << "free_text=" << free_text;
  }
}

TEST(Generator, GoldenDigestsStableAcrossProcessInvocations) {
  // Golden digests pin the exact byte stream across *process* invocations:
  // a run today must reproduce the bytes of the run that recorded these
  // constants (no pointer-order, locale, or ASLR dependence). Regenerate
  // deliberately if the wire format or generator draws change.
  GeneratorConfig config;
  config.seed = 4242;
  config.duration_ns = 2 * kNanosPerSecond;
  config.target_records_per_sec = 10'000;
  const uint64_t plain = TraceDigest(config);
  config.free_text_payloads = true;
  const uint64_t free_text = TraceDigest(config);
  EXPECT_EQ(plain, 0xEECA5AB7947271B4ull);
  EXPECT_EQ(free_text, 0xD5E1CFA27F5EDEF9ull);
  EXPECT_NE(plain, free_text);  // Free-text mode must change the payloads.
}

TEST(Generator, FreeTextPayloadsLookLikeLogLines) {
  GeneratorConfig config = SmallConfig();
  config.duration_ns = 2 * kNanosPerSecond;
  config.free_text_payloads = true;
  TraceGenerator gen(config);
  Epoch epoch = 0;
  std::vector<LogRecord> records;
  uint64_t payloads = 0, with_spaces = 0;
  while (gen.NextEpoch(&epoch, &records)) {
    for (const auto& r : records) {
      ++payloads;
      if (r.payload.find(' ') != std::string::npos) {
        ++with_spaces;
      }
      EXPECT_EQ(r.payload.find('|'), std::string::npos)
          << "payload must not break the wire format";
    }
  }
  ASSERT_GT(payloads, 1000u);
  EXPECT_EQ(payloads, with_spaces);  // Every payload is multi-token text.
}

TEST(Generator, EpochsOrderedAndRecordsSortedWithinEpoch) {
  TraceGenerator gen(SmallConfig());
  Epoch epoch = 0;
  Epoch expected = 0;
  std::vector<LogRecord> records;
  while (gen.NextEpoch(&epoch, &records)) {
    EXPECT_EQ(epoch, expected++);
    for (size_t i = 0; i < records.size(); ++i) {
      const Epoch record_epoch =
          static_cast<Epoch>(records[i].time / kNanosPerSecond);
      EXPECT_EQ(record_epoch, epoch) << "record outside its epoch";
      if (i > 0) {
        EXPECT_LE(records[i - 1].time, records[i].time);
      }
    }
  }
  EXPECT_EQ(expected, gen.duration_epochs());
}

TEST(Generator, CalibrationMatchesPaperRatios) {
  TraceGenerator gen(SmallConfig());
  Epoch epoch = 0;
  std::vector<LogRecord> records;
  uint64_t emitted = 0;
  while (gen.NextEpoch(&epoch, &records)) {
    emitted += records.size();
  }
  const GeneratorStats& s = gen.stats();
  ASSERT_GT(s.root_spans, 1000u);

  // Table 1 ratios: ~7.5 spans per tree, ~6.5 annotations per span, ~49
  // records per tree, ~1.04 root spans per session.
  const double spans_per_tree =
      static_cast<double>(s.spans) / static_cast<double>(s.root_spans);
  EXPECT_NEAR(spans_per_tree, 7.5, 0.8);
  const double ann_per_span =
      static_cast<double>(s.annotations) / static_cast<double>(s.spans);
  EXPECT_NEAR(ann_per_span, 6.5, 0.3);
  const double roots_per_session =
      static_cast<double>(s.root_spans) / static_cast<double>(s.sessions);
  EXPECT_NEAR(roots_per_session, 1.04, 0.03);

  // Mean input rate within 20% of target (trees crossing the trace boundary
  // lose some records).
  const double rate = static_cast<double>(emitted) /
                      static_cast<double>(gen.duration_epochs());
  EXPECT_NEAR(rate, 20'000, 4'000);

  // Mean wire-format record size ~300 bytes (Table 1: 305 B).
  const double bytes_per_record =
      static_cast<double>(s.wire_bytes) / static_cast<double>(s.records_emitted);
  EXPECT_NEAR(bytes_per_record, 300, 60);
}

TEST(Generator, DurationAndGapDistributionsMatchPaper) {
  GeneratorConfig config = SmallConfig();
  config.duration_ns = 40 * kNanosPerSecond;
  TraceGenerator gen(config);
  Epoch epoch = 0;
  std::vector<LogRecord> records;
  while (gen.NextEpoch(&epoch, &records)) {
  }
  GeneratorStats& s = const_cast<GeneratorStats&>(gen.stats());
  ASSERT_GT(s.root_span_durations_ms.count(), 200u);

  // ~95% of root spans live under 2 seconds (§5).
  const double p95 = s.root_span_durations_ms.Quantile(0.95);
  EXPECT_LT(p95, 2000.0);
  const double p50 = s.root_span_durations_ms.Quantile(0.50);
  EXPECT_LT(p50, 500.0);
  EXPECT_GT(p50, 1.0);

  // 99.5% of root spans have max inter-message gap <= 12.3 ms (§5).
  const double gap_p99 = s.max_gap_per_root_ms.Quantile(0.99);
  EXPECT_LE(gap_p99, 12.3 + 1.0);

  // Spans per tree: heavy small mass, strong variation (§5).
  EXPECT_EQ(s.spans_per_tree.Min(), 1.0);
  EXPECT_GT(s.spans_per_tree.Max(), 20.0);
  // Most trees touch few services (Figure 4).
  EXPECT_LE(s.services_per_tree.Quantile(0.5), 8.0);
}

TEST(Generator, LossInjectionDropsApproximatelyTheConfiguredFraction) {
  GeneratorConfig config = SmallConfig();
  config.record_loss_rate = 0.10;
  config.duration_ns = 10 * kNanosPerSecond;
  TraceGenerator gen(config);
  Epoch epoch = 0;
  std::vector<LogRecord> records;
  while (gen.NextEpoch(&epoch, &records)) {
  }
  const GeneratorStats& s = gen.stats();
  const double loss = static_cast<double>(s.records_lost) /
                      static_cast<double>(s.annotations);
  EXPECT_NEAR(loss, 0.10, 0.01);
}

TEST(Generator, ClockSkewPerturbsTimestampsButKeepsStreamFeasible) {
  GeneratorConfig config = SmallConfig();
  config.clock_skew_sigma_ns = 5 * kNanosPerMilli;
  config.duration_ns = 5 * kNanosPerSecond;
  TraceGenerator gen(config);
  Epoch epoch = 0;
  std::vector<LogRecord> records;
  uint64_t total = 0;
  while (gen.NextEpoch(&epoch, &records)) {
    for (size_t i = 1; i < records.size(); ++i) {
      ASSERT_LE(records[i - 1].time, records[i].time);
    }
    total += records.size();
  }
  EXPECT_GT(total, 10'000u);
}

TEST(Generator, SessionIdsAreUniquePerSession) {
  GeneratorConfig config = SmallConfig();
  config.duration_ns = 5 * kNanosPerSecond;
  TraceGenerator gen(config);
  Epoch epoch = 0;
  std::vector<LogRecord> records;
  std::map<std::string, int> sessions_seen;
  while (gen.NextEpoch(&epoch, &records)) {
    for (const auto& r : records) {
      ++sessions_seen[r.session_id];
    }
  }
  EXPECT_EQ(sessions_seen.size(), gen.stats().sessions);
}

TEST(Generator, TemplatesRepeatTreeStructures) {
  // Zipf-weighted templates: the same signature must recur often, making
  // structure clustering (§5.2) meaningful.
  GeneratorConfig config = SmallConfig();
  config.duration_ns = 3 * kNanosPerSecond;
  TraceGenerator gen(config);
  Epoch epoch = 0;
  std::vector<LogRecord> records;
  std::map<std::string, std::map<std::string, int>> txn_sets;  // session -> txns.
  std::map<std::string, int> root_sig;
  uint64_t trees = 0;
  while (gen.NextEpoch(&epoch, &records)) {
    for (const auto& r : records) {
      if (r.txn_id.IsRoot() && r.kind == EventKind::kSpanStart) {
        ++trees;
        ++root_sig["svc" + std::to_string(r.service)];
      }
    }
  }
  ASSERT_GT(trees, 500u);
  // The hottest root service should dominate (Zipf skew).
  int max_count = 0;
  for (const auto& [k, v] : root_sig) {
    max_count = std::max(max_count, v);
  }
  EXPECT_GT(max_count, static_cast<int>(trees / 20));
}

}  // namespace
}  // namespace ts
