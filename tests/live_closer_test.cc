// LiveCloser: watermark-driven fragment closing for the live serving path.
// The load-bearing property is the determinism contract documented in
// live_closer.h — fragment boundaries depend only on each record's watermark
// tag, never on CloseExpired cadence.
#include "src/core/live_closer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/log/wire_format.h"

namespace ts {
namespace {

constexpr EventTime kSec = kNanosPerSecond;

LogRecord Rec(const std::string& id, EventTime t, uint32_t service = 1) {
  LogRecord r;
  r.time = t;
  r.session_id = id;
  r.txn_id = *TxnId::Parse("1");
  r.service = service;
  r.host = service;
  r.kind = EventKind::kAnnotation;
  r.payload = "p";
  return r;
}

std::string Canonical(std::vector<Session> sessions) {
  std::vector<std::string> blocks;
  for (const auto& s : sessions) {
    std::string b = s.id + "#" + std::to_string(s.fragment_index) + "@" +
                    std::to_string(s.first_epoch) + "-" +
                    std::to_string(s.last_epoch) + ":" +
                    std::to_string(s.closed_at);
    for (const auto& r : s.records) {
      b += "\n" + ToWireFormat(r);
    }
    blocks.push_back(std::move(b));
  }
  std::sort(blocks.begin(), blocks.end());
  std::string out;
  for (const auto& b : blocks) {
    out += b + "\n---\n";
  }
  return out;
}

TEST(LiveCloserTest, OutOfOrderRecordsSortedOnEmit) {
  LiveCloser closer(2 * kSec);
  std::vector<Session> closed;
  closer.Feed(Rec("S", 3 * kSec), &closed);
  closer.Feed(Rec("S", 1 * kSec), &closed);
  closer.Feed(Rec("S", 2 * kSec), &closed);
  EXPECT_TRUE(closed.empty());  // Within slack: late records join, no split.
  closer.FlushAll(&closed);
  ASSERT_EQ(closed.size(), 1u);
  ASSERT_EQ(closed[0].records.size(), 3u);
  EXPECT_EQ(closed[0].records[0].time, 1 * kSec);
  EXPECT_EQ(closed[0].records[1].time, 2 * kSec);
  EXPECT_EQ(closed[0].records[2].time, 3 * kSec);
  EXPECT_EQ(closed[0].first_epoch, 1u);
  EXPECT_EQ(closed[0].last_epoch, 3u);
}

TEST(LiveCloserTest, WatermarkDrivenCloseOrder) {
  LiveCloser closer(2 * kSec);
  std::vector<Session> closed;
  closer.Feed(Rec("A", 1 * kSec), &closed);
  closer.Feed(Rec("B", 3 * kSec), &closed);
  // Watermark is 3s: A (last 1s) is expired, B (last 3s) is not.
  closer.CloseExpired(&closed);
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].id, "A");
  EXPECT_EQ(closed[0].fragment_index, 0u);
  EXPECT_EQ(closer.open_sessions(), 1u);

  closed.clear();
  closer.ObserveWatermark(5 * kSec);
  closer.CloseExpired(&closed);
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].id, "B");
  EXPECT_EQ(closer.open_sessions(), 0u);
}

TEST(LiveCloserTest, FragmentRenumberingOnIdleGap) {
  LiveCloser closer(2 * kSec);
  std::vector<Session> closed;
  closer.Feed(Rec("S", 0), &closed);
  // Another session's traffic advances the watermark past S's close point.
  closer.Feed(Rec("T", 10 * kSec), &closed);
  // S resumes: the expired fragment is emitted at Feed time, the record
  // starts fragment 1.
  closer.Feed(Rec("S", 10 * kSec + 1), &closed);
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].id, "S");
  EXPECT_EQ(closed[0].fragment_index, 0u);
  ASSERT_EQ(closed[0].records.size(), 1u);
  EXPECT_EQ(closed[0].records[0].time, 0);

  closed.clear();
  closer.FlushAll(&closed);
  ASSERT_EQ(closed.size(), 2u);
  uint32_t s_fragment = 0;
  for (const auto& s : closed) {
    if (s.id == "S") {
      s_fragment = s.fragment_index;
      ASSERT_EQ(s.records.size(), 1u);
      EXPECT_EQ(s.records[0].time, 10 * kSec + 1);
    }
  }
  EXPECT_EQ(s_fragment, 1u);
}

TEST(LiveCloserTest, SingleSessionGapSplitsWithoutOtherTraffic) {
  LiveCloser closer(2 * kSec);
  std::vector<Session> closed;
  closer.Feed(Rec("S", 0), &closed);
  closer.Feed(Rec("S", 5 * kSec), &closed);  // Gap > inactivity.
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].fragment_index, 0u);
  closer.FlushAll(&closed);
  ASSERT_EQ(closed.size(), 2u);
  EXPECT_EQ(closed[1].fragment_index, 1u);
}

// The same record/watermark sequence must produce identical fragments no
// matter how often CloseExpired runs — this is what makes sharded output
// byte-identical across worker counts.
TEST(LiveCloserTest, FragmentsIndependentOfCloseExpiredCadence) {
  const std::vector<LogRecord> input = {
      Rec("A", 1 * kSec),          Rec("B", 1 * kSec + 5),
      Rec("A", 2 * kSec),          Rec("C", 6 * kSec),
      Rec("A", 6 * kSec + 1),      Rec("B", 6 * kSec + 2),
      Rec("C", 7 * kSec),          Rec("A", 20 * kSec),
      Rec("B", 20 * kSec + 1),     Rec("A", 20 * kSec + 2),
  };

  std::vector<Session> eager_closed;
  LiveCloser eager(2 * kSec);
  for (const auto& r : input) {
    eager.Feed(r, &eager_closed);
    eager.CloseExpired(&eager_closed);  // After every record.
  }
  eager.FlushAll(&eager_closed);

  std::vector<Session> lazy_closed;
  LiveCloser lazy(2 * kSec);
  for (const auto& r : input) {
    lazy.Feed(r, &lazy_closed);  // Never CloseExpired until the end.
  }
  lazy.FlushAll(&lazy_closed);

  EXPECT_EQ(Canonical(std::move(eager_closed)),
            Canonical(std::move(lazy_closed)));
}

TEST(LiveCloserTest, OpenBytesTracksState) {
  LiveCloser closer(2 * kSec);
  std::vector<Session> closed;
  EXPECT_EQ(closer.open_bytes(), 0u);
  closer.Feed(Rec("S", 0), &closed);
  EXPECT_GT(closer.open_bytes(), 0u);
  closer.FlushAll(&closed);
  EXPECT_EQ(closer.open_bytes(), 0u);
}

TEST(LiveCloserTest, ShedOldestUntilDropsOldestIdleFirstExactly) {
  LiveCloser closer(100 * kSec);  // Nothing closes on its own.
  std::vector<Session> closed;
  closer.Feed(Rec("A", 1 * kSec), &closed);
  closer.Feed(Rec("A", 2 * kSec), &closed);
  closer.Feed(Rec("B", 5 * kSec), &closed);
  closer.Feed(Rec("C", 9 * kSec), &closed);
  ASSERT_TRUE(closed.empty());
  EXPECT_EQ(closer.open_records(), 4u);

  // A budget one byte under the current state sheds exactly the oldest-idle
  // fragment (A, last_time 2s) and counts its records exactly.
  EXPECT_EQ(closer.ShedOldestUntil(closer.open_bytes() - 1), 1u);
  EXPECT_EQ(closer.shed_fragments(), 1u);
  EXPECT_EQ(closer.shed_records(), 2u);
  EXPECT_EQ(closer.open_records(), 2u);
  EXPECT_EQ(closer.open_sessions(), 2u);

  // Budget zero clears the rest; shed fragments are never emitted.
  EXPECT_EQ(closer.ShedOldestUntil(0), 2u);
  EXPECT_EQ(closer.open_bytes(), 0u);
  EXPECT_EQ(closer.open_records(), 0u);
  EXPECT_EQ(closer.shed_records(), 4u);
  EXPECT_EQ(closer.shed_fragments(), 3u);
  closer.FlushAll(&closed);
  EXPECT_TRUE(closed.empty());
  EXPECT_EQ(closer.records_emitted(), 0u);
}

TEST(LiveCloserTest, ShedAdvancesFragmentNumbering) {
  LiveCloser closer(1 * kSec);
  std::vector<Session> closed;
  closer.Feed(Rec("S", 1 * kSec), &closed);
  EXPECT_EQ(closer.ShedOldestUntil(0), 1u);
  // S re-appears later: numbering continues as if the shed fragment had
  // closed, so downstream consumers see no index reuse.
  closer.Feed(Rec("S", 10 * kSec), &closed);
  closer.FlushAll(&closed);
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].id, "S");
  EXPECT_EQ(closed[0].fragment_index, 1u);
  // Exact accounting: 2 fed = 1 emitted + 0 open + 1 shed.
  EXPECT_EQ(closer.records_emitted(), 1u);
  EXPECT_EQ(closer.open_records(), 0u);
  EXPECT_EQ(closer.shed_records(), 1u);
}

TEST(LiveCloserTest, AccountingPartitionHoldsAtEveryQuiescentPoint) {
  LiveCloser closer(2 * kSec);
  std::vector<Session> closed;
  uint64_t fed = 0;
  for (int round = 0; round < 6; ++round) {
    for (int s = 0; s < 5; ++s) {
      closer.ObserveWatermark(static_cast<EventTime>(round) * 3 * kSec);
      closer.Feed(Rec("S" + std::to_string(s),
                      static_cast<EventTime>(round) * 3 * kSec),
                  &closed);
      ++fed;
    }
    closer.CloseExpired(&closed);
    if (round == 3) {
      closer.ShedOldestUntil(closer.open_bytes() / 2);
    }
    EXPECT_EQ(fed, closer.records_emitted() + closer.open_records() +
                       closer.shed_records())
        << "round " << round;
  }
  closer.FlushAll(&closed);
  EXPECT_EQ(closer.open_records(), 0u);
  EXPECT_EQ(fed, closer.records_emitted() + closer.shed_records());
}

}  // namespace
}  // namespace ts
