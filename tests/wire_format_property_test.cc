// Property sweep: wire-format round trips over randomized records, and parser
// robustness against mutated lines (never crashes, never mis-accepts).
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/log/wire_format.h"

namespace ts {
namespace {

LogRecord RandomRecord(Rng& rng) {
  LogRecord r;
  r.time = static_cast<EventTime>(rng.Next() % 2'000'000'000'000ULL);
  const size_t id_len = 8 + rng.NextBelow(24);
  static const char kChars[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789_-";
  for (size_t i = 0; i < id_len; ++i) {
    r.session_id.push_back(kChars[rng.NextBelow(sizeof(kChars) - 1)]);
  }
  std::vector<uint32_t> path;
  const size_t depth = 1 + rng.NextBelow(8);
  for (size_t i = 0; i < depth; ++i) {
    path.push_back(static_cast<uint32_t>(rng.NextBelow(1'000'000)));
  }
  r.txn_id = TxnId(std::move(path));
  r.service = static_cast<uint32_t>(rng.NextBelow(100'000));
  r.host = static_cast<uint32_t>(rng.NextBelow(10'000));
  r.kind = static_cast<EventKind>(rng.NextBelow(3));
  const size_t payload_len = rng.NextBelow(400);
  for (size_t i = 0; i < payload_len; ++i) {
    // Payload may contain anything except newline (one record per line),
    // including the field separator.
    char c = static_cast<char>(32 + rng.NextBelow(95));
    r.payload.push_back(c);
  }
  return r;
}

class WireFormatProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WireFormatProperty, RoundTripsRandomRecords) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const LogRecord r = RandomRecord(rng);
    const std::string line = ToWireFormat(r);
    auto parsed = ParseWireFormat(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    EXPECT_EQ(parsed->time, r.time);
    EXPECT_EQ(parsed->session_id, r.session_id);
    EXPECT_EQ(parsed->txn_id, r.txn_id);
    EXPECT_EQ(parsed->service, r.service);
    EXPECT_EQ(parsed->host, r.host);
    EXPECT_EQ(parsed->kind, r.kind);
    EXPECT_EQ(parsed->payload, r.payload);
  }
}

TEST_P(WireFormatProperty, MutatedLinesNeverCrashParser) {
  Rng rng(GetParam() ^ 0xDEAD);
  uint64_t accepted = 0;
  for (int i = 0; i < 2000; ++i) {
    std::string line = ToWireFormat(RandomRecord(rng));
    // Mutate: truncate, splice, or corrupt bytes.
    switch (rng.NextBelow(3)) {
      case 0:
        line.resize(rng.NextBelow(line.size() + 1));
        break;
      case 1: {
        const size_t n = 1 + rng.NextBelow(5);
        for (size_t k = 0; k < n && !line.empty(); ++k) {
          line[rng.NextBelow(line.size())] =
              static_cast<char>(32 + rng.NextBelow(95));
        }
        break;
      }
      case 2:
        line.insert(rng.NextBelow(line.size() + 1), "|");
        break;
    }
    auto parsed = ParseWireFormat(line);  // Must not crash.
    if (parsed) {
      ++accepted;  // Mutations can still yield valid records; that's fine.
    }
  }
  // The parser rejects the majority of corrupted lines (structure checks on
  // 6 fields make silent acceptance rare).
  EXPECT_LT(accepted, 1500u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFormatProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace ts
