// ts_loadgen building blocks: arrival schedules (seeded statistical
// contracts), the session synthesizer (wire validity, retirement cadence,
// hot-shard pinning), and the close tracker's latency arithmetic. The full
// TCP path is covered end-to-end by `ts_loadgen --quick` and
// bench/overload_study; these tests pin the deterministic pieces.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "src/common/siphash.h"
#include "src/loadgen/arrival.h"
#include "src/loadgen/load_generator.h"
#include "src/loadgen/synth.h"
#include "src/log/wire_format.h"

namespace ts {
namespace {

TEST(ArrivalScheduleTest, UniformIsExactAndDriftFree) {
  ArrivalSchedule sched(ArrivalProcess::kUniform, /*rate_per_s=*/1e6,
                        /*seed=*/1);
  int64_t prev = 0;
  for (int i = 1; i <= 100000; ++i) {
    const int64_t t = sched.NextNs();
    EXPECT_EQ(t, int64_t{1000} * i);  // 1us gap, computed by index: no drift.
    EXPECT_GE(t, prev);
    prev = t;
  }
  EXPECT_EQ(sched.emitted(), 100000u);
}

TEST(ArrivalScheduleTest, PoissonMatchesRateWithUnitCV) {
  const double rate = 250000.0;
  ArrivalSchedule sched(ArrivalProcess::kPoisson, rate, /*seed=*/42);
  const int n = 200000;
  std::vector<double> gaps;
  int64_t prev = 0;
  for (int i = 0; i < n; ++i) {
    const int64_t t = sched.NextNs();
    ASSERT_GE(t, prev);
    gaps.push_back(static_cast<double>(t - prev));
    prev = t;
  }
  double sum = 0;
  for (double g : gaps) {
    sum += g;
  }
  const double mean = sum / n;
  double var = 0;
  for (double g : gaps) {
    var += (g - mean) * (g - mean);
  }
  var /= n;
  const double cv = std::sqrt(var) / mean;
  // Exponential inter-arrivals: mean gap = 1e9 / rate, CV = 1. Seeded run,
  // so the tolerances guard the generator, not the test's luck.
  EXPECT_NEAR(mean, 1e9 / rate, 0.03 * (1e9 / rate));
  EXPECT_NEAR(cv, 1.0, 0.05);
}

TEST(ArrivalScheduleTest, DeterministicPerSeed) {
  ArrivalSchedule a(ArrivalProcess::kPoisson, 1e5, 7);
  ArrivalSchedule b(ArrivalProcess::kPoisson, 1e5, 7);
  ArrivalSchedule c(ArrivalProcess::kPoisson, 1e5, 8);
  bool differs = false;
  for (int i = 0; i < 1000; ++i) {
    const int64_t ta = a.NextNs();
    EXPECT_EQ(ta, b.NextNs());
    differs = differs || ta != c.NextNs();
  }
  EXPECT_TRUE(differs);
}

TEST(SessionSynthTest, EveryLineParsesAndCarriesIntendedTime) {
  SynthOptions options;
  options.records_per_session = 5;
  options.concurrent_sessions = 16;
  SessionSynth synth(options);
  SynthRecord rec;
  for (int i = 0; i < 2000; ++i) {
    const int64_t intended = int64_t{1000} * i;
    synth.NextRecord(intended, &rec);
    auto parsed = ParseWireFormat(rec.line);
    ASSERT_TRUE(parsed.has_value()) << rec.line;
    // Event time = intended send time + fixed origin: the consumer's
    // watermark tracks the load clock.
    EXPECT_EQ(parsed->time, intended + SessionSynth::kEventOrigin);
  }
  EXPECT_EQ(synth.records(), 2000u);
  // Every retirement consumes exactly records_per_session records; at most
  // one partial session per slot remains in flight. The pool replaces each
  // retired session immediately, so started = initial pool + retired.
  EXPECT_LE(synth.sessions_retired(), 2000u / 5);
  EXPECT_GE(synth.sessions_retired() * 5 + 16 * 4, 2000u);
  EXPECT_EQ(synth.sessions_started(),
            synth.sessions_retired() + options.concurrent_sessions);
}

TEST(SessionSynthTest, RetirementMarksLastRecordWithSessionId) {
  SynthOptions options;
  options.concurrent_sessions = 1;  // Single slot: deterministic cadence.
  options.records_per_session = 3;
  SessionSynth synth(options);
  SynthRecord rec;
  for (int i = 1; i <= 9; ++i) {
    synth.NextRecord(i * 1000, &rec);
    if (i % 3 == 0) {
      EXPECT_TRUE(rec.retires_session) << i;
      EXPECT_FALSE(rec.session_id.empty());
    } else {
      EXPECT_FALSE(rec.retires_session) << i;
    }
  }
  EXPECT_EQ(synth.sessions_retired(), 3u);
}

TEST(SessionSynthTest, HotShardPinningUsesRoutingHash) {
  SynthOptions options;
  options.hot_session_fraction = 1.0;  // Every new session is pinned.
  options.shards = 4;
  options.hot_shard = 2;
  options.concurrent_sessions = 32;
  options.records_per_session = 4;
  SessionSynth synth(options);
  SynthRecord rec;
  size_t retired = 0;
  for (int i = 0; i < 4000; ++i) {
    synth.NextRecord(i * 1000, &rec);
    if (rec.retires_session) {
      ++retired;
      // The exact hash LivePipeline routes by.
      EXPECT_EQ(SipHash24(std::string_view(rec.session_id)) % 4, 2u)
          << rec.session_id;
    }
  }
  EXPECT_GT(retired, 100u);
  EXPECT_EQ(synth.hot_sessions(), synth.sessions_started());
}

TEST(SessionSynthTest, ServiceSkewConcentratesTraffic) {
  SynthOptions options;
  options.num_services = 64;
  options.service_skew = 1.3;
  SessionSynth synth(options);
  SynthRecord rec;
  std::map<std::string, int> by_service;
  for (int i = 0; i < 20000; ++i) {
    synth.NextRecord(i * 1000, &rec);
    auto parsed = ParseWireFormat(rec.line);
    ASSERT_TRUE(parsed.has_value());
    by_service[std::to_string(parsed->service)]++;
  }
  int top = 0;
  for (const auto& [svc, n] : by_service) {
    top = std::max(top, n);
  }
  // Zipf(1.3) over 64 services gives the top service far more than the
  // uniform share (312); require 4x to leave seed slack.
  EXPECT_GT(top, 4 * 20000 / 64);
}

TEST(CloseTrackerTest, LatencyFromIntendedTimeAndReactionOffset) {
  CloseTracker tracker;
  tracker.SetOrigin(/*t0_steady_ns=*/1'000'000,
                    /*inactivity_ns=*/500'000);
  tracker.Arm("s1", /*intended_last_ns=*/2'000'000);
  EXPECT_EQ(tracker.pending(), 1u);

  int64_t latency = 0, reaction = 0;
  // Observed 3.7ms on the steady clock = 0.7ms after intended (t0 + 2ms).
  ASSERT_TRUE(tracker.Resolve("s1", 3'700'000, &latency, &reaction));
  EXPECT_EQ(latency, 700'000);
  EXPECT_EQ(reaction, 200'000);  // latency - inactivity window.
  EXPECT_EQ(tracker.pending(), 0u);
  // A session resolves exactly once; unknown ids are unmatched.
  EXPECT_FALSE(tracker.Resolve("s1", 4'000'000, &latency, &reaction));
  EXPECT_FALSE(tracker.Resolve("nope", 4'000'000, &latency, &reaction));
}

TEST(CloseTrackerTest, EarlyObservationClampsToZero) {
  CloseTracker tracker;
  tracker.SetOrigin(0, 1'000'000);
  tracker.Arm("s", 5'000'000);
  int64_t latency = -1, reaction = -1;
  ASSERT_TRUE(tracker.Resolve("s", 4'000'000, &latency, &reaction));
  EXPECT_EQ(latency, 0);   // Observed "before" intended: jitter, not signal.
  EXPECT_EQ(reaction, 0);
}

}  // namespace
}  // namespace ts
