// Massive-fan-out torture suite for the subscription path.
//
// The serving contract under fan-out: with hundreds of concurrent
// subscribers — filtered and unfiltered, fast and deliberately stalled —
// every connection's ledger balances exactly:
//
//   delivered(conn) + sum(#DROPPED counts on conn) == closes matching
//                                                     conn's filter
//
// and the server evaluates each subscription filter at most once per closed
// session per distinct filter (the memoized fan-out), not once per
// subscriber. Runs under TSan in CI (see the tsan job's filter), so the
// fan-out path is also exercised for races, not just accounting.
#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/analytics/session_store.h"
#include "src/common/time_util.h"
#include "src/query/query_client.h"
#include "src/query/query_server.h"

namespace ts {
namespace {

Session MakeSession(const std::string& id, EventTime start_ns,
                    std::vector<uint32_t> services) {
  Session s;
  s.id = id;
  s.fragment_index = 0;
  EventTime t = start_ns;
  for (uint32_t svc : services) {
    LogRecord r;
    r.time = t;
    r.session_id = id;
    r.txn_id = *TxnId::Parse("1-2");
    r.service = svc;
    r.host = svc;
    r.kind = EventKind::kAnnotation;
    r.payload = "x=aaaaaaaa";
    s.records.push_back(std::move(r));
    t += kNanosPerMilli;
  }
  s.first_epoch = static_cast<Epoch>(start_ns / kNanosPerSecond);
  s.last_epoch = s.first_epoch + 1;
  s.closed_at = s.last_epoch;
  return s;
}

// Raises RLIMIT_NOFILE enough for the client herd + server sides. Returns
// false if the hard limit is too low (the test then skips, not fails).
bool EnsureFdBudget(rlim_t want) {
  struct rlimit lim;
  if (getrlimit(RLIMIT_NOFILE, &lim) != 0) {
    return false;
  }
  if (lim.rlim_cur >= want) {
    return true;
  }
  if (lim.rlim_max != RLIM_INFINITY && lim.rlim_max < want) {
    return false;
  }
  lim.rlim_cur = want;
  return setrlimit(RLIMIT_NOFILE, &lim) == 0;
}

struct SubscriberPlan {
  enum class Kind { kAll, kService, kPrefix };
  Kind kind = Kind::kAll;
  uint32_t service = 0;
  std::string prefix;
  bool stalled = false;

  std::string FilterToken() const {
    switch (kind) {
      case Kind::kAll:
        return "";
      case Kind::kService:
        return "service=" + std::to_string(service);
      case Kind::kPrefix:
        return "prefix=" + prefix;
    }
    return "";
  }

  bool Matches(const Session& s) const {
    switch (kind) {
      case Kind::kAll:
        return true;
      case Kind::kService:
        for (const auto& r : s.records) {
          if (r.service == service) {
            return true;
          }
        }
        return false;
      case Kind::kPrefix:
        return s.id.compare(0, prefix.size(), prefix) == 0;
    }
    return false;
  }
};

TEST(QueryFanout, FiveHundredSubscribersAccountExactly) {
  constexpr size_t kClients = 520;
  constexpr size_t kSessions = 120;
  if (!EnsureFdBudget(4096)) {
    GTEST_SKIP() << "RLIMIT_NOFILE too low for " << kClients << " clients";
  }

  auto store = std::make_shared<SessionStore>(SessionStore::Options{});
  auto metrics = std::make_shared<MetricsRegistry>();
  QueryServerOptions options;
  // Small per-connection budgets so the stalled subscribers actually drop:
  // the contract is exact accounting, not lossless delivery.
  options.max_conn_buffer_bytes = 8u << 10;
  options.conn_sock_buf_bytes = 16u << 10;
  QueryServer server(options, store, metrics);
  ASSERT_TRUE(server.Start());
  std::thread server_thread([&] { server.Run(); });

  // The herd: a deterministic mix of unfiltered, service-filtered and
  // prefix-filtered subscribers; every 13th is stalled behind a pinned
  // 4 KiB receive buffer and never reads until the drain phase.
  std::vector<SubscriberPlan> plans(kClients);
  std::vector<std::unique_ptr<QueryClient>> clients(kClients);
  for (size_t i = 0; i < kClients; ++i) {
    SubscriberPlan& plan = plans[i];
    switch (i % 4) {
      case 0:
      case 1:
        plan.kind = SubscriberPlan::Kind::kAll;
        break;
      case 2:
        plan.kind = SubscriberPlan::Kind::kService;
        plan.service = static_cast<uint32_t>(i % 5);
        break;
      case 3:
        plan.kind = SubscriberPlan::Kind::kPrefix;
        plan.prefix = "P" + std::to_string(i % 7) + "-";
        break;
    }
    plan.stalled = (i % 13) == 0;

    QueryClientOptions client_options;
    client_options.port = server.port();
    if (plan.stalled) {
      client_options.sock_buf_bytes = 4096;
    }
    clients[i] = std::make_unique<QueryClient>(client_options);
    ASSERT_TRUE(clients[i]->Connect()) << "client " << i;
    ASSERT_TRUE(clients[i]->SubscribeFiltered(plan.FilterToken()))
        << "client " << i << " filter '" << plan.FilterToken() << "'";
  }
  ASSERT_EQ(server.subscriber_count(), kClients);

  // Close kSessions deterministic sessions. Ids carry one of 7 prefixes and
  // each session touches 2 of 8 services, so every filter matches a strict,
  // precomputable subset.
  std::vector<Session> closed;
  closed.reserve(kSessions);
  for (size_t j = 0; j < kSessions; ++j) {
    closed.push_back(MakeSession(
        "P" + std::to_string(j % 7) + "-" + std::to_string(j),
        static_cast<EventTime>(j) * kNanosPerMilli,
        {static_cast<uint32_t>(j % 5), 5 + static_cast<uint32_t>(j % 3)}));
  }
  for (const auto& s : closed) {
    store->Insert(Session(s));
  }

  std::vector<uint64_t> expected(kClients, 0);
  for (size_t i = 0; i < kClients; ++i) {
    for (const auto& s : closed) {
      expected[i] += plans[i].Matches(s) ? 1 : 0;
    }
  }

  // Settle: the server has finished fanning out once every matching close is
  // accounted as streamed or dropped. Aggregate across all subscribers.
  uint64_t expected_total = 0;
  for (uint64_t e : expected) {
    expected_total += e;
  }
  const auto settle_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (true) {
    const auto& counters = server.counters();
    if (counters.sessions_streamed + counters.sessions_dropped >=
        expected_total) {
      break;
    }
    ASSERT_LT(std::chrono::steady_clock::now(), settle_deadline)
        << "fan-out stalled: streamed=" << counters.sessions_streamed
        << " dropped=" << counters.sessions_dropped
        << " expected=" << expected_total;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // Drain every connection in parallel (8 reader threads over disjoint
  // client subsets) and balance each ledger exactly.
  std::vector<uint64_t> delivered(kClients, 0);
  std::atomic<size_t> failures{0};
  std::vector<std::thread> readers;
  constexpr size_t kReaderThreads = 8;
  for (size_t t = 0; t < kReaderThreads; ++t) {
    readers.emplace_back([&, t] {
      for (size_t i = t; i < kClients; i += kReaderThreads) {
        QueryClient& client = *clients[i];
        const auto drain_deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(60);
        bool dead = false;
        while (!dead && delivered[i] + client.total_dropped() < expected[i]) {
          if (std::chrono::steady_clock::now() > drain_deadline) {
            ++failures;
            break;
          }
          Session s;
          uint64_t dropped = 0;
          switch (client.Next(&s, &dropped, /*timeout_ms=*/1000)) {
            case QueryClient::Event::kSession:
              ++delivered[i];
              if (!plans[i].Matches(s)) {
                ++failures;  // A session this filter must never see.
              }
              break;
            case QueryClient::Event::kDropped:
            case QueryClient::Event::kTimeout:
              break;
            case QueryClient::Event::kClosed:
            case QueryClient::Event::kError:
              ++failures;
              dead = true;
              break;
          }
        }
      }
    });
  }
  for (auto& t : readers) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0u);

  // The exact accounting identity, per connection.
  for (size_t i = 0; i < kClients; ++i) {
    EXPECT_EQ(delivered[i] + clients[i]->total_dropped(), expected[i])
        << "client " << i << " filter '" << plans[i].FilterToken()
        << "' stalled=" << plans[i].stalled;
  }

  // Stalled subscribers with tiny buffers really did shed (the test would
  // vacuously pass if nothing ever dropped).
  uint64_t total_dropped = 0;
  for (const auto& client : clients) {
    total_dropped += client->total_dropped();
  }
  EXPECT_GT(total_dropped, 0u);

  // Filter memoization: each close evaluates each *distinct* filter at most
  // once — 12 distinct filter tokens here (5 service + 7 prefix), not 520
  // subscribers' worth. Unfiltered fan-out costs no evaluation at all.
  const uint64_t filter_evals = server.counters().filter_evals;
  EXPECT_GT(filter_evals, 0u);
  EXPECT_LE(filter_evals, kSessions * 12);

  for (auto& client : clients) {
    client->Close();
  }
  server.Stop();
  server_thread.join();
}

TEST(QueryFanout, MixedFiltersSmallScaleSmoke) {
  // A fast, always-on sibling of the torture test: 6 subscribers, one of
  // each flavor pair, exact accounting with no drops expected.
  auto store = std::make_shared<SessionStore>(SessionStore::Options{});
  QueryServer server({}, store);
  ASSERT_TRUE(server.Start());
  std::thread server_thread([&] { server.Run(); });

  const std::vector<std::string> filters = {"",          "",
                                            "service=1", "service=9",
                                            "prefix=A",  "prefix=ZZ"};
  std::vector<std::unique_ptr<QueryClient>> clients;
  for (const auto& filter : filters) {
    QueryClientOptions client_options;
    client_options.port = server.port();
    clients.push_back(std::make_unique<QueryClient>(client_options));
    ASSERT_TRUE(clients.back()->Connect());
    ASSERT_TRUE(clients.back()->SubscribeFiltered(filter));
  }

  store->Insert(MakeSession("A-1", 0, {1, 2}));
  store->Insert(MakeSession("B-1", kNanosPerMilli, {2, 3}));

  const std::vector<uint64_t> expected = {2, 2, 1, 0, 1, 0};
  for (size_t i = 0; i < clients.size(); ++i) {
    uint64_t got = 0;
    Session s;
    uint64_t dropped = 0;
    while (got < expected[i] &&
           clients[i]->Next(&s, &dropped, /*timeout_ms=*/5000) ==
               QueryClient::Event::kSession) {
      ++got;
    }
    EXPECT_EQ(got, expected[i]) << "filter '" << filters[i] << "'";
    // And nothing extra trails behind the expected deliveries.
    EXPECT_EQ(clients[i]->Next(&s, &dropped, /*timeout_ms=*/100),
              QueryClient::Event::kTimeout)
        << "filter '" << filters[i] << "'";
    EXPECT_EQ(clients[i]->total_dropped(), 0u);
  }

  server.Stop();
  server_thread.join();
}

}  // namespace
}  // namespace ts
