// LineFramer tests: TCP delivers arbitrary byte fragments, so framing must be
// invariant to where the reads split — including splits inside a record,
// inside a CRLF pair, and across oversized hostile lines. The property
// section at the bottom runs a real generated wire corpus through every
// single split point and through seeded multi-splits, checking parse-level
// equivalence, plus a hostile corpus (embedded NULs, oversized lines,
// malformed records) that must degrade without corrupting its neighbors.
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/log/wire_format.h"
#include "src/net/frame_reader.h"
#include "src/workload/generator.h"

namespace ts {
namespace {

std::vector<std::string> SampleLines() {
  return {
      "599859123|XKSHSKCBA53U088FXGE7LD8|26-3-11-5-1|svc-204|h-17|ANNOT|q=BOS",
      "1|S|1|svc-0|h-0|START|",
      "2|S|1-1|svc-1|h-0|END|payload with spaces",
      "a line that is not wire format at all",
      "",
      "trailing",
  };
}

std::string Joined(const std::vector<std::string>& lines) {
  std::string wire;
  for (const auto& l : lines) {
    wire += l;
    wire += '\n';
  }
  return wire;
}

// Feeding the whole buffer at once yields exactly the input lines.
TEST(LineFramer, WholeBufferRoundTrip) {
  const auto expected = SampleLines();
  LineFramer framer;
  std::vector<std::string> got;
  framer.Feed(Joined(expected), &got);
  EXPECT_EQ(got, expected);
  EXPECT_EQ(framer.pending_bytes(), 0u);
  EXPECT_EQ(framer.frame_errors(), 0u);
}

// Every fixed chunk size from 1 byte up must produce identical framing.
TEST(LineFramer, InvariantToFixedChunkSizes) {
  const auto expected = SampleLines();
  const std::string wire = Joined(expected);
  for (size_t chunk = 1; chunk <= 17; ++chunk) {
    LineFramer framer;
    std::vector<std::string> got;
    for (size_t off = 0; off < wire.size(); off += chunk) {
      framer.Feed(std::string_view(wire).substr(off, chunk), &got);
    }
    EXPECT_EQ(got, expected) << "chunk size " << chunk;
  }
}

// Random split points (seeded — deterministic) across a larger corpus.
TEST(LineFramer, InvariantToRandomSplits) {
  std::vector<std::string> expected;
  Rng rng(1234);
  for (int i = 0; i < 500; ++i) {
    std::string line;
    const size_t len = rng.NextBelow(120);
    for (size_t j = 0; j < len; ++j) {
      line.push_back(static_cast<char>('A' + rng.NextBelow(26)));
    }
    expected.push_back(std::move(line));
  }
  const std::string wire = Joined(expected);
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Rng splits(seed + 1);
    LineFramer framer;
    std::vector<std::string> got;
    size_t off = 0;
    while (off < wire.size()) {
      const size_t n = 1 + splits.NextBelow(97);
      framer.Feed(std::string_view(wire).substr(off, n), &got);
      off += n;
    }
    EXPECT_EQ(got, expected) << "seed " << seed;
  }
}

TEST(LineFramer, StripsCrlfAcrossSplitBoundary) {
  LineFramer framer;
  std::vector<std::string> got;
  framer.Feed("abc\r", &got);
  EXPECT_TRUE(got.empty());  // The '\r' might be mid-line data; wait for '\n'.
  framer.Feed("\ndef\r\n", &got);
  EXPECT_EQ(got, (std::vector<std::string>{"abc", "def"}));
}

TEST(LineFramer, OversizedLineDroppedNeighborsSurvive) {
  LineFramer framer(LineFramer::Options{/*max_line_bytes=*/16});
  std::vector<std::string> got;
  const std::string huge(100, 'x');
  // Deliver: good line, huge line (in pieces), good line.
  framer.Feed("ok-1\n", &got);
  framer.Feed(huge, &got);
  framer.Feed(huge, &got);
  framer.Feed("\nok-2\n", &got);
  EXPECT_EQ(got, (std::vector<std::string>{"ok-1", "ok-2"}));
  EXPECT_EQ(framer.frame_errors(), 1u);
}

TEST(LineFramer, ResetDiscardsPartial) {
  LineFramer framer;
  std::vector<std::string> got;
  framer.Feed("truncated-by-a-crash", &got);
  EXPECT_EQ(framer.pending_bytes(), 20u);
  EXPECT_TRUE(framer.Reset());
  EXPECT_FALSE(framer.Reset());  // Idempotent; nothing left to discard.
  // The next stream starts clean: no gluing to the discarded tail.
  framer.Feed("fresh\n", &got);
  EXPECT_EQ(got, (std::vector<std::string>{"fresh"}));
}

// --- Property section: real wire corpus, exhaustive and seeded splits ---

// A corpus of genuine wire-format records, as a log server would frame them.
std::vector<std::string> WireCorpus(size_t max_lines) {
  GeneratorConfig config;
  config.seed = 77;
  config.duration_ns = 1 * kNanosPerSecond;
  config.target_records_per_sec = 2'000;
  TraceGenerator gen(config);
  std::vector<std::string> lines;
  Epoch epoch = 0;
  std::vector<LogRecord> records;
  while (lines.size() < max_lines && gen.NextEpoch(&epoch, &records)) {
    for (const auto& r : records) {
      lines.push_back(ToWireFormat(r));
    }
  }
  if (lines.size() > max_lines) {
    lines.resize(max_lines);
  }
  return lines;
}

// Canonical comparison at the parse level: framing is only correct if every
// reassembled line still parses to the record the unsplit line parses to.
void ExpectParseEquivalent(const std::vector<std::string>& got,
                           const std::vector<std::string>& expected,
                           const std::string& context) {
  ASSERT_EQ(got.size(), expected.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], expected[i]) << context << " line " << i;
    const std::optional<LogRecord> a = ParseWireFormat(got[i]);
    const std::optional<LogRecord> b = ParseWireFormat(expected[i]);
    ASSERT_EQ(a.has_value(), b.has_value()) << context << " line " << i;
    if (a.has_value()) {
      EXPECT_EQ(a->time, b->time) << context << " line " << i;
      EXPECT_EQ(a->session_id, b->session_id) << context << " line " << i;
      EXPECT_EQ(a->payload, b->payload) << context << " line " << i;
    }
  }
}

// Exhaustive: every line of the corpus crosses every possible split point.
// A sliding two-chunk window over the full stream visits each boundary once;
// line i's bytes get split at every interior offset as the window passes.
TEST(LineFramerProperty, EveryLineThroughEverySplitPoint) {
  const auto expected = WireCorpus(/*max_lines=*/64);
  ASSERT_GE(expected.size(), 32u);
  const std::string wire = Joined(expected);
  for (size_t split = 1; split < wire.size(); ++split) {
    LineFramer framer;
    std::vector<std::string> got;
    framer.Feed(std::string_view(wire).substr(0, split), &got);
    framer.Feed(std::string_view(wire).substr(split), &got);
    if (got != expected) {  // Full check only on failure: keeps this O(n^2)
      ExpectParseEquivalent(got, expected,  // sweep inside the time budget.
                            "split at " + std::to_string(split));
      return;
    }
  }
  // One full parse-equivalence pass on an interesting boundary.
  LineFramer framer;
  std::vector<std::string> got;
  const size_t mid = wire.size() / 2;
  framer.Feed(std::string_view(wire).substr(0, mid), &got);
  framer.Feed(std::string_view(wire).substr(mid), &got);
  ExpectParseEquivalent(got, expected, "mid split");
}

// Seeded random multi-splits over a bigger corpus, including pathological
// 1-byte reads; every schedule must reassemble parse-identically.
TEST(LineFramerProperty, SeededMultiSplitSchedules) {
  const auto expected = WireCorpus(/*max_lines=*/512);
  const std::string wire = Joined(expected);
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    Rng rng(seed);
    const size_t max_chunk = 1 + rng.NextBelow(256);
    LineFramer framer;
    std::vector<std::string> got;
    size_t off = 0;
    while (off < wire.size()) {
      const size_t n = 1 + rng.NextBelow(max_chunk);
      framer.Feed(std::string_view(wire).substr(off, n), &got);
      off += n;
    }
    if (got != expected) {
      ExpectParseEquivalent(got, expected, "seed " + std::to_string(seed));
      return;
    }
  }
}

// Hostile corpus: embedded NUL bytes, malformed records, an oversized line,
// and empty lines, interleaved with good records. The framer must deliver
// the good records intact regardless of split schedule, count exactly one
// frame error for the oversized line, and pass NUL-bearing lines through
// byte-for-byte (they are data, not terminators).
TEST(LineFramerProperty, HostileCorpusSurvivesAnySplit) {
  std::string nul_line = "1|S|1|svc-0|h-0|ANNOT|nul=";
  nul_line.push_back('\0');
  nul_line += "tail";
  const std::vector<std::string> expected = {
      "1|S|1|svc-0|h-0|START|",
      nul_line,
      "not|a|wire|record",
      "",
      "||||||",
      "2|S|1|svc-0|h-0|END|done",
  };
  const std::string oversized(4096, 'z');
  std::string wire = Joined({expected[0], expected[1], expected[2]});
  wire += oversized + "\n";  // Dropped: exceeds max_line_bytes below.
  wire += Joined({expected[3], expected[4], expected[5]});

  for (uint64_t seed = 1; seed <= 16; ++seed) {
    Rng rng(seed);
    LineFramer framer(LineFramer::Options{/*max_line_bytes=*/1024});
    std::vector<std::string> got;
    size_t off = 0;
    while (off < wire.size()) {
      const size_t n = 1 + rng.NextBelow(64);
      framer.Feed(std::string_view(wire).substr(off, n), &got);
      off += n;
    }
    EXPECT_EQ(got, expected) << "seed " << seed;
    EXPECT_EQ(framer.frame_errors(), 1u) << "seed " << seed;
    EXPECT_EQ(framer.pending_bytes(), 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ts
