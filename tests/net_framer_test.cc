// LineFramer tests: TCP delivers arbitrary byte fragments, so framing must be
// invariant to where the reads split — including splits inside a record,
// inside a CRLF pair, and across oversized hostile lines.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/net/frame_reader.h"

namespace ts {
namespace {

std::vector<std::string> SampleLines() {
  return {
      "599859123|XKSHSKCBA53U088FXGE7LD8|26-3-11-5-1|svc-204|h-17|ANNOT|q=BOS",
      "1|S|1|svc-0|h-0|START|",
      "2|S|1-1|svc-1|h-0|END|payload with spaces",
      "a line that is not wire format at all",
      "",
      "trailing",
  };
}

std::string Joined(const std::vector<std::string>& lines) {
  std::string wire;
  for (const auto& l : lines) {
    wire += l;
    wire += '\n';
  }
  return wire;
}

// Feeding the whole buffer at once yields exactly the input lines.
TEST(LineFramer, WholeBufferRoundTrip) {
  const auto expected = SampleLines();
  LineFramer framer;
  std::vector<std::string> got;
  framer.Feed(Joined(expected), &got);
  EXPECT_EQ(got, expected);
  EXPECT_EQ(framer.pending_bytes(), 0u);
  EXPECT_EQ(framer.frame_errors(), 0u);
}

// Every fixed chunk size from 1 byte up must produce identical framing.
TEST(LineFramer, InvariantToFixedChunkSizes) {
  const auto expected = SampleLines();
  const std::string wire = Joined(expected);
  for (size_t chunk = 1; chunk <= 17; ++chunk) {
    LineFramer framer;
    std::vector<std::string> got;
    for (size_t off = 0; off < wire.size(); off += chunk) {
      framer.Feed(std::string_view(wire).substr(off, chunk), &got);
    }
    EXPECT_EQ(got, expected) << "chunk size " << chunk;
  }
}

// Random split points (seeded — deterministic) across a larger corpus.
TEST(LineFramer, InvariantToRandomSplits) {
  std::vector<std::string> expected;
  Rng rng(1234);
  for (int i = 0; i < 500; ++i) {
    std::string line;
    const size_t len = rng.NextBelow(120);
    for (size_t j = 0; j < len; ++j) {
      line.push_back(static_cast<char>('A' + rng.NextBelow(26)));
    }
    expected.push_back(std::move(line));
  }
  const std::string wire = Joined(expected);
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Rng splits(seed + 1);
    LineFramer framer;
    std::vector<std::string> got;
    size_t off = 0;
    while (off < wire.size()) {
      const size_t n = 1 + splits.NextBelow(97);
      framer.Feed(std::string_view(wire).substr(off, n), &got);
      off += n;
    }
    EXPECT_EQ(got, expected) << "seed " << seed;
  }
}

TEST(LineFramer, StripsCrlfAcrossSplitBoundary) {
  LineFramer framer;
  std::vector<std::string> got;
  framer.Feed("abc\r", &got);
  EXPECT_TRUE(got.empty());  // The '\r' might be mid-line data; wait for '\n'.
  framer.Feed("\ndef\r\n", &got);
  EXPECT_EQ(got, (std::vector<std::string>{"abc", "def"}));
}

TEST(LineFramer, OversizedLineDroppedNeighborsSurvive) {
  LineFramer framer(LineFramer::Options{/*max_line_bytes=*/16});
  std::vector<std::string> got;
  const std::string huge(100, 'x');
  // Deliver: good line, huge line (in pieces), good line.
  framer.Feed("ok-1\n", &got);
  framer.Feed(huge, &got);
  framer.Feed(huge, &got);
  framer.Feed("\nok-2\n", &got);
  EXPECT_EQ(got, (std::vector<std::string>{"ok-1", "ok-2"}));
  EXPECT_EQ(framer.frame_errors(), 1u);
}

TEST(LineFramer, ResetDiscardsPartial) {
  LineFramer framer;
  std::vector<std::string> got;
  framer.Feed("truncated-by-a-crash", &got);
  EXPECT_EQ(framer.pending_bytes(), 20u);
  EXPECT_TRUE(framer.Reset());
  EXPECT_FALSE(framer.Reset());  // Idempotent; nothing left to discard.
  // The next stream starts clean: no gluing to the discarded tail.
  framer.Feed("fresh\n", &got);
  EXPECT_EQ(got, (std::vector<std::string>{"fresh"}));
}

}  // namespace
}  // namespace ts
