// Unit tests for trace-tree reconstruction: structure from hierarchical IDs,
// missing-node inference, signatures, and service call patterns.
#include <gtest/gtest.h>

#include "src/core/trace_tree.h"

namespace ts {
namespace {

LogRecord Rec(const char* txn, EventTime t, uint32_t service,
              EventKind kind = EventKind::kAnnotation) {
  LogRecord r;
  r.time = t;
  r.session_id = "SESS";
  r.txn_id = *TxnId::Parse(txn);
  r.service = service;
  r.kind = kind;
  return r;
}

Session MakeSession(std::vector<LogRecord> records) {
  Session s;
  s.id = "SESS";
  s.records = std::move(records);
  return s;
}

TEST(TraceTree, SingleSpan) {
  const Session s = MakeSession({Rec("1", 10, 7, EventKind::kSpanStart),
                                 Rec("1", 20, 7),
                                 Rec("1", 30, 7, EventKind::kSpanEnd)});
  auto trees = TraceTree::FromSession(s);
  ASSERT_EQ(trees.size(), 1u);
  const TraceTree& t = trees[0];
  EXPECT_EQ(t.num_spans(), 1u);
  EXPECT_EQ(t.num_inferred(), 0u);
  EXPECT_EQ(t.total_records(), 3u);
  EXPECT_EQ(t.root().service, 7u);
  EXPECT_EQ(t.MinTime(), 10);
  EXPECT_EQ(t.MaxTime(), 30);
  EXPECT_EQ(t.Duration(), 20);
  EXPECT_EQ(t.Signature(), (std::vector<uint32_t>{0}));
  EXPECT_EQ(t.SignatureKey(), "0");
  EXPECT_TRUE(t.ServiceCallPairs().empty());
  EXPECT_EQ(t.DistinctServices(), 1u);
}

TEST(TraceTree, NestedStructureAndSiblingOrder) {
  // Root 1 with children 1-1, 1-2, 1-10; 1-2 has child 1-2-1.
  const Session s = MakeSession({
      Rec("1", 0, 1),
      Rec("1-1", 10, 2),
      Rec("1-2", 20, 3),
      Rec("1-2-1", 25, 4),
      Rec("1-10", 40, 5),
  });
  auto trees = TraceTree::FromSession(s);
  ASSERT_EQ(trees.size(), 1u);
  const TraceTree& t = trees[0];
  EXPECT_EQ(t.num_spans(), 5u);
  ASSERT_EQ(t.root().children.size(), 3u);
  // Children ordered numerically by sibling index: 1, 2, 10.
  EXPECT_EQ(t.nodes()[t.root().children[0]].id.ToString(), "1-1");
  EXPECT_EQ(t.nodes()[t.root().children[1]].id.ToString(), "1-2");
  EXPECT_EQ(t.nodes()[t.root().children[2]].id.ToString(), "1-10");
  // BFS signature: root has 3 children; 1-1 leaf; 1-2 one child; 1-10 leaf;
  // 1-2-1 leaf.
  EXPECT_EQ(t.Signature(), (std::vector<uint32_t>{3, 0, 1, 0, 0}));
}

TEST(TraceTree, InfersMissingInteriorNodes) {
  // Only a deep descendant was logged: "2-10-3". Root "2" and "2-10" must be
  // materialized as inferred nodes (§2.3).
  const Session s = MakeSession({Rec("2-10-3", 100, 9)});
  auto trees = TraceTree::FromSession(s);
  ASSERT_EQ(trees.size(), 1u);
  const TraceTree& t = trees[0];
  EXPECT_EQ(t.num_spans(), 3u);
  EXPECT_EQ(t.num_inferred(), 2u);
  EXPECT_EQ(t.root().id.ToString(), "2");
  EXPECT_TRUE(t.root().inferred);
  EXPECT_EQ(t.root().service, kUnknownService);
  EXPECT_EQ(t.nodes()[1].id.ToString(), "2-10");
  EXPECT_TRUE(t.nodes()[1].inferred);
  EXPECT_FALSE(t.nodes()[2].inferred);
  EXPECT_EQ(t.nodes()[2].service, 9u);
}

TEST(TraceTree, ImpliedMissingChildrenFromSiblingIndices) {
  // 1-10 observed with no siblings: 9 siblings implied missing. 1-10's parent
  // chain is complete otherwise.
  const Session s = MakeSession({Rec("1", 0, 1), Rec("1-10", 10, 2)});
  auto trees = TraceTree::FromSession(s);
  ASSERT_EQ(trees.size(), 1u);
  EXPECT_EQ(trees[0].ImpliedMissingChildren(), 9u);

  // Full set present: nothing implied.
  const Session full = MakeSession(
      {Rec("1", 0, 1), Rec("1-1", 1, 2), Rec("1-2", 2, 3), Rec("1-3", 3, 4)});
  EXPECT_EQ(TraceTree::FromSession(full)[0].ImpliedMissingChildren(), 0u);
}

TEST(TraceTree, SessionSplitsIntoOneTreePerRootSpan) {
  const Session s = MakeSession({
      Rec("1", 0, 1),
      Rec("2", 100, 1),
      Rec("2-1", 110, 2),
      Rec("1-1", 10, 3),
      Rec("5", 500, 4),  // Root indices need not be dense.
  });
  auto trees = TraceTree::FromSession(s);
  ASSERT_EQ(trees.size(), 3u);
  EXPECT_EQ(trees[0].root().id.ToString(), "1");
  EXPECT_EQ(trees[0].num_spans(), 2u);
  EXPECT_EQ(trees[1].root().id.ToString(), "2");
  EXPECT_EQ(trees[1].num_spans(), 2u);
  EXPECT_EQ(trees[2].root().id.ToString(), "5");
  EXPECT_EQ(trees[2].num_spans(), 1u);
}

TEST(TraceTree, ServiceCallPairsViaBfsSkippingInferred) {
  const Session s = MakeSession({
      Rec("1", 0, 10),
      Rec("1-1", 1, 20),
      Rec("1-1-1", 2, 30),
      Rec("1-2-1", 3, 40),  // 1-2 inferred: pairs through it are skipped.
  });
  auto trees = TraceTree::FromSession(s);
  const auto pairs = trees[0].ServiceCallPairs();
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (std::pair<uint32_t, uint32_t>{10, 20}));
  EXPECT_EQ(pairs[1], (std::pair<uint32_t, uint32_t>{20, 30}));
}

TEST(TraceTree, MalformedEmptyTxnIdsAreSkipped) {
  Session s = MakeSession({Rec("1", 0, 1)});
  LogRecord bad;
  bad.time = 5;
  bad.session_id = "SESS";
  // Empty txn id (default-constructed).
  s.records.push_back(bad);
  auto trees = TraceTree::FromSession(s);
  ASSERT_EQ(trees.size(), 1u);
  EXPECT_EQ(trees[0].total_records(), 1u);
}

TEST(TraceTree, DuplicateRecordsPerNodeAggregateTimes) {
  const Session s = MakeSession({
      Rec("3", 50, 6),
      Rec("3", 10, 6),
      Rec("3", 90, 6),
  });
  auto trees = TraceTree::FromSession(s);
  const TraceNode& root = trees[0].root();
  EXPECT_EQ(root.num_records, 3u);
  EXPECT_EQ(root.start, 10);
  EXPECT_EQ(root.end, 90);
}

TEST(TraceTree, SignatureDistinguishesShapes) {
  // Chain 1 -> 1-1 -> 1-1-1 vs fan-out 1 -> {1-1, 1-2}.
  const Session chain =
      MakeSession({Rec("1", 0, 1), Rec("1-1", 1, 1), Rec("1-1-1", 2, 1)});
  const Session fan = MakeSession({Rec("1", 0, 1), Rec("1-1", 1, 1), Rec("1-2", 2, 1)});
  EXPECT_EQ(TraceTree::FromSession(chain)[0].SignatureKey(), "1.1.0");
  EXPECT_EQ(TraceTree::FromSession(fan)[0].SignatureKey(), "2.0.0");
  EXPECT_NE(TraceTree::FromSession(chain)[0].Signature(),
            TraceTree::FromSession(fan)[0].Signature());
}

}  // namespace
}  // namespace ts
