// Disk-fault conformance suite: the durability layers (ts_ckpt snapshots,
// ts_store cold segments) run under seeded disk-fault schedules — ENOSPC
// windows, EIO, short and torn writes, failed fsyncs and renames — injected
// through the FsFaultInjector hooks, asserting the durable-prefix property:
// every restart lands on a fully valid snapshot plus a fully valid segment
// set, and the final tiered digest is byte-identical to a fault-free run.
//
// Layout mirrors fault_conformance_test.cc: unit tests for the scripted
// injector's byte-exact semantics, an every-failure-point atomicity sweep
// for WriteFileAtomic, degraded-mode behavior tests (checkpoint retry/drop,
// cold-tier shedding with exact accounting, prune and tmp-cleanup hygiene),
// then seeded end-to-end schedules over checkpoint/spill/restore cycles with
// an exploratory lane keyed on TS_FAULT_SEED / TS_FAULT_SCHEDULE_MULTIPLIER.
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/analytics/session_digest.h"
#include "src/analytics/session_store.h"
#include "src/ckpt/async_checkpointer.h"
#include "src/ckpt/checkpointer.h"
#include "src/ckpt/live_checkpoint.h"
#include "src/ckpt/snapshot_io.h"
#include "src/common/rng.h"
#include "src/core/live_pipeline.h"
#include "src/fault/fault_plan.h"
#include "src/fault/fs_fault.h"
#include "src/fault/scripted_disk_injector.h"
#include "src/log/wire_format.h"
#include "src/net/log_server.h"
#include "src/net/socket_ingest.h"
#include "src/store/cold_tier.h"
#include "src/store/tiered_digest.h"
#include "src/workload/generator.h"

namespace ts {
namespace {

FaultPlan ManualPlan(std::vector<FaultEvent> events) {
  FaultPlan plan;
  plan.events = std::move(events);
  return plan;
}

uint64_t TotalFired(const DiskFaultCountersSnapshot& c) {
  return c.enospc_failures + c.eio_failures + c.short_writes +
         c.fsync_failures + c.rename_failures + c.torn_writes;
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

// --- ScriptedDiskInjector semantics ---

TEST(DiskFaultInjectorUnit, EnospcWindowFailsNWritesThenHeals) {
  ScriptedDiskInjector injector(ManualPlan({{FaultType::kEnospc, 0, 2}}));
  FsFaultAction a = injector.OnWrite("f", 100);
  ASSERT_EQ(a.kind, FsFaultAction::Kind::kFail);
  EXPECT_EQ(a.error, ENOSPC);
  a = injector.OnWrite("f", 100);
  ASSERT_EQ(a.kind, FsFaultAction::Kind::kFail);
  EXPECT_EQ(a.error, ENOSPC);
  // The window is spent: the volume "healed".
  EXPECT_EQ(injector.OnWrite("f", 100).kind, FsFaultAction::Kind::kProceed);
  EXPECT_EQ(injector.counters().enospc_failures, 2u);
}

TEST(DiskFaultInjectorUnit, EioHitsWritesAndPreads) {
  ScriptedDiskInjector injector(ManualPlan({{FaultType::kEio, 0, 2}}));
  FsFaultAction a = injector.OnWrite("f", 64);
  ASSERT_EQ(a.kind, FsFaultAction::Kind::kFail);
  EXPECT_EQ(a.error, EIO);
  a = injector.OnPread("f", 64, 0);
  ASSERT_EQ(a.kind, FsFaultAction::Kind::kFail);
  EXPECT_EQ(a.error, EIO);
  EXPECT_EQ(injector.OnPread("f", 64, 0).kind, FsFaultAction::Kind::kProceed);
  EXPECT_EQ(injector.counters().eio_failures, 2u);
}

TEST(DiskFaultInjectorUnit, ShortWriteClampsExactlyOnce) {
  ScriptedDiskInjector injector(ManualPlan({{FaultType::kShortWrite, 0, 3}}));
  FsFaultAction a = injector.OnWrite("f", 100);
  ASSERT_EQ(a.kind, FsFaultAction::Kind::kClamp);
  EXPECT_EQ(a.max_bytes, 3u);
  injector.OnIoBytes(3);
  EXPECT_EQ(injector.OnWrite("f", 97).kind, FsFaultAction::Kind::kProceed);
  EXPECT_EQ(injector.counters().short_writes, 1u);
}

TEST(DiskFaultInjectorUnit, FsyncAndRenameWindowsAreIndependent) {
  ScriptedDiskInjector injector(ManualPlan(
      {{FaultType::kFsyncFail, 0, 1}, {FaultType::kRenameFail, 0, 1}}));
  // A write between them is untouched: the windows attack their own calls.
  EXPECT_EQ(injector.OnWrite("f", 10).kind, FsFaultAction::Kind::kProceed);
  FsFaultAction a = injector.OnFsync("f");
  ASSERT_EQ(a.kind, FsFaultAction::Kind::kFail);
  EXPECT_EQ(a.error, EIO);
  EXPECT_EQ(injector.OnFsync("f").kind, FsFaultAction::Kind::kProceed);
  a = injector.OnRename("f.tmp", "f");
  ASSERT_EQ(a.kind, FsFaultAction::Kind::kFail);
  EXPECT_EQ(a.error, EIO);
  EXPECT_EQ(injector.OnRename("f.tmp", "f").kind,
            FsFaultAction::Kind::kProceed);
  const DiskFaultCountersSnapshot counters = injector.counters();
  EXPECT_EQ(counters.fsync_failures, 1u);
  EXPECT_EQ(counters.rename_failures, 1u);
}

TEST(DiskFaultInjectorUnit, TornWriteIsByteExact) {
  // Tear at disk offset 10: an 8-byte write proceeds, the write crossing the
  // boundary is clamped to end exactly there, and the next attempt dies EIO.
  ScriptedDiskInjector injector(ManualPlan({{FaultType::kTornWrite, 10, 0}}));
  EXPECT_EQ(injector.OnWrite("f", 8).kind, FsFaultAction::Kind::kProceed);
  injector.OnIoBytes(8);
  FsFaultAction a = injector.OnWrite("f", 8);
  ASSERT_EQ(a.kind, FsFaultAction::Kind::kClamp);
  EXPECT_EQ(a.max_bytes, 2u);
  injector.OnIoBytes(2);
  a = injector.OnWrite("f", 6);
  ASSERT_EQ(a.kind, FsFaultAction::Kind::kFail);
  EXPECT_EQ(a.error, EIO);
  EXPECT_EQ(injector.counters().torn_writes, 1u);
  // Plan exhausted: back to normal.
  EXPECT_EQ(injector.OnWrite("f", 6).kind, FsFaultAction::Kind::kProceed);
}

TEST(DiskFaultInjectorUnit, NetworkEventsAreSkippedOnTheDiskSurface) {
  // A mixed plan (one grammar covers both surfaces): the kill is a no-op
  // here, the ENOSPC behind it still fires at its offset.
  ScriptedDiskInjector injector(ManualPlan(
      {{FaultType::kKill, 0, 0}, {FaultType::kEnospc, 0, 1}}));
  FsFaultAction a = injector.OnWrite("f", 16);
  ASSERT_EQ(a.kind, FsFaultAction::Kind::kFail);
  EXPECT_EQ(a.error, ENOSPC);
  EXPECT_EQ(injector.OnWrite("f", 16).kind, FsFaultAction::Kind::kProceed);
}

TEST(DiskFaultInjectorUnit, MetricsGaugesExportCounters) {
  ScriptedDiskInjector injector(ManualPlan({{FaultType::kEnospc, 0, 1}}));
  MetricsRegistry registry;
  injector.RegisterMetrics(&registry);
  EXPECT_EQ(injector.OnWrite("f", 1).kind, FsFaultAction::Kind::kFail);
  bool saw = false;
  for (const auto& [name, value] : registry.Snapshot()) {
    if (name == "fault_disk_enospc_failures") {
      saw = true;
      EXPECT_EQ(value, 1);
    }
  }
  EXPECT_TRUE(saw);
}

TEST(DiskFaultInjectorUnit, SeededDiskPlansAreDeterministic) {
  FaultProfile profile;
  ASSERT_TRUE(FaultPlan::ResolveProfile("disk-aggressive", 1 << 16, &profile));
  const FaultPlan a = FaultPlan::FromSeed(11, "disk-aggressive", profile);
  const FaultPlan b = FaultPlan::FromSeed(11, "disk-aggressive", profile);
  EXPECT_EQ(a.ToText(), b.ToText());
  EXPECT_FALSE(a.events.empty());
}

// --- WriteFileAtomic every-failure-point sweep (satellite) ---

// Fails the Nth occurrence of one operation kind, exactly once, and clamps
// every write to `write_chunk` bytes so a multi-KB payload takes many write
// calls — letting the sweep park a failure after a partially written tmp.
class FailNthOpInjector : public FsFaultInjector {
 public:
  enum class Op { kOpen, kWrite, kFsync, kRename };

  FailNthOpInjector(Op op, int nth, int error, size_t write_chunk)
      : op_(op), nth_(nth), error_(error), write_chunk_(write_chunk) {}

  FsFaultAction OnOpen(const char* path, bool for_write) override {
    (void)path;
    return for_write ? Step(Op::kOpen, 0) : FsFaultAction{};
  }
  FsFaultAction OnWrite(const char* path, size_t len) override {
    (void)path;
    return Step(Op::kWrite, len);
  }
  FsFaultAction OnFsync(const char* path) override {
    (void)path;
    return Step(Op::kFsync, 0);
  }
  FsFaultAction OnRename(const char* from, const char* to) override {
    (void)from;
    (void)to;
    return Step(Op::kRename, 0);
  }

  int fired() const { return fired_.load(std::memory_order_relaxed); }

 private:
  FsFaultAction Step(Op op, size_t len) {
    if (op == op_ && fired_.load(std::memory_order_relaxed) == 0 &&
        ++count_ == nth_) {
      fired_.fetch_add(1, std::memory_order_relaxed);
      FsFaultAction action;
      action.kind = FsFaultAction::Kind::kFail;
      action.error = error_;
      return action;
    }
    if (op == Op::kWrite && write_chunk_ > 0 && len > write_chunk_) {
      FsFaultAction action;
      action.kind = FsFaultAction::Kind::kClamp;
      action.max_bytes = write_chunk_;
      return action;
    }
    return {};
  }

  const Op op_;
  const int nth_;
  const int error_;
  const size_t write_chunk_;
  std::atomic<int> count_{0};
  std::atomic<int> fired_{0};
};

class DiskFaultAtomicity : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "ts_diskfault_atomic_" +
           std::to_string(::getpid());
    const std::string cleanup = "rm -rf '" + dir_ + "'";
    ASSERT_EQ(std::system(cleanup.c_str()), 0);
    ASSERT_EQ(std::system(("mkdir -p '" + dir_ + "'").c_str()), 0);
  }
  void TearDown() override {
    const std::string cleanup = "rm -rf '" + dir_ + "'";
    EXPECT_EQ(std::system(cleanup.c_str()), 0);
  }
  std::string dir_;
};

std::string Payload(char fill, size_t n) {
  std::string s;
  s.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    s.push_back(static_cast<char>(fill + static_cast<char>(i % 23)));
  }
  return s;
}

TEST_F(DiskFaultAtomicity, EveryFailurePointLeavesOldIntactNeverTorn) {
  const std::string path = dir_ + "/file.snap";
  const std::string v1 = Payload('A', 6000);
  const std::string v2 = Payload('a', 6000);
  ASSERT_TRUE(WriteFileAtomic(path, v1));

  using Op = FailNthOpInjector::Op;
  struct Point {
    Op op;
    int nth;
    int error;
    const char* name;
  };
  // With writes clamped to 1KB chunks the 6KB payload takes ~6 write calls,
  // so the sweep covers a failure before any byte lands (write #1), in the
  // middle of the stream (#3), on the final chunk (#6), and at each of the
  // open / fsync / rename stages.
  const Point points[] = {
      {Op::kOpen, 1, EACCES, "open"},        {Op::kWrite, 1, ENOSPC, "write1"},
      {Op::kWrite, 3, EIO, "write3"},        {Op::kWrite, 6, ENOSPC, "write6"},
      {Op::kFsync, 1, EIO, "fsync"},         {Op::kRename, 1, EIO, "rename"},
  };
  for (const Point& p : points) {
    FailNthOpInjector injector(p.op, p.nth, p.error, /*write_chunk=*/1024);
    {
      ScopedFsFaultInjector scoped(&injector);
      EXPECT_FALSE(WriteFileAtomic(path, v2)) << p.name;
    }
    EXPECT_EQ(injector.fired(), 1) << p.name;
    // The old file is byte-for-byte intact under the final name, and the
    // failed attempt's temp file has been removed — nothing torn, nothing
    // leaked, exactly the state RestoreLatest and segment discovery expect.
    std::string back;
    ASSERT_TRUE(ReadFile(path, &back)) << p.name;
    EXPECT_EQ(back, v1) << p.name;
    EXPECT_FALSE(FileExists(path + ".tmp")) << p.name;
  }

  // Healed: the same write goes through and fully replaces the old bytes.
  ASSERT_TRUE(WriteFileAtomic(path, v2));
  std::string back;
  ASSERT_TRUE(ReadFile(path, &back));
  EXPECT_EQ(back, v2);
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

TEST_F(DiskFaultAtomicity, MultiPartWriteSurvivesMidStreamFailure) {
  const std::string path = dir_ + "/parts.snap";
  const std::string header = Payload('H', 64);
  const std::string body = Payload('B', 4096);
  const std::string footer = Payload('F', 64);
  ASSERT_TRUE(WriteFileAtomic(path, {header, body, footer}));
  std::string v1;
  ASSERT_TRUE(ReadFile(path, &v1));
  ASSERT_EQ(v1.size(), header.size() + body.size() + footer.size());

  FailNthOpInjector injector(FailNthOpInjector::Op::kWrite, 3, ENOSPC,
                             /*write_chunk=*/512);
  {
    ScopedFsFaultInjector scoped(&injector);
    EXPECT_FALSE(WriteFileAtomic(path, {footer, body, header}));
  }
  EXPECT_EQ(injector.fired(), 1);
  std::string back;
  ASSERT_TRUE(ReadFile(path, &back));
  EXPECT_EQ(back, v1);
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

TEST_F(DiskFaultAtomicity, ShortWritesAloneNeverFailTheWrite) {
  // A degraded disk that only ever writes tiny chunks is slow, not broken:
  // the write loop must absorb arbitrary clamping and still produce exact
  // bytes.
  const std::string path = dir_ + "/slow.snap";
  const std::string v = Payload('s', 5000);
  FailNthOpInjector injector(FailNthOpInjector::Op::kOpen, /*nth=*/1000,
                             EIO, /*write_chunk=*/7);
  {
    ScopedFsFaultInjector scoped(&injector);
    ASSERT_TRUE(WriteFileAtomic(path, v));
  }
  std::string back;
  ASSERT_TRUE(ReadFile(path, &back));
  EXPECT_EQ(back, v);
}

// --- Degraded-mode behavior ---

// A disk that fails every write while `broken` holds — the persistent-outage
// model the shed and degraded-checkpoint paths are built for.
class BrokenDiskInjector : public FsFaultInjector {
 public:
  FsFaultAction OnWrite(const char* path, size_t len) override {
    (void)path;
    (void)len;
    return Maybe();
  }
  FsFaultAction OnFsync(const char* path) override {
    (void)path;
    return Maybe();
  }
  std::atomic<bool> broken{true};

 private:
  FsFaultAction Maybe() {
    if (!broken.load(std::memory_order_relaxed)) {
      return {};
    }
    FsFaultAction action;
    action.kind = FsFaultAction::Kind::kFail;
    action.error = ENOSPC;
    return action;
  }
};

// Fails the next N preads (serving-path reads), then heals.
class FailPreadsInjector : public FsFaultInjector {
 public:
  FsFaultAction OnPread(const char* path, size_t len,
                        uint64_t offset) override {
    (void)path;
    (void)len;
    (void)offset;
    if (fail_left.fetch_sub(1, std::memory_order_relaxed) > 0) {
      FsFaultAction action;
      action.kind = FsFaultAction::Kind::kFail;
      action.error = EIO;
      return action;
    }
    fail_left.fetch_add(1, std::memory_order_relaxed);  // Undo the overshoot.
    return {};
  }
  std::atomic<int> fail_left{0};
};

// Fails every unlink while `broken` holds (prune-failure model).
class FailUnlinkInjector : public FsFaultInjector {
 public:
  FsFaultAction OnUnlink(const char* path) override {
    (void)path;
    if (!broken.load(std::memory_order_relaxed)) {
      return {};
    }
    FsFaultAction action;
    action.kind = FsFaultAction::Kind::kFail;
    action.error = EIO;
    return action;
  }
  std::atomic<bool> broken{true};
};

std::string MakeTempDir(const std::string& tag) {
  const std::string dir =
      ::testing::TempDir() + tag + "_" + std::to_string(::getpid());
  EXPECT_EQ(std::system(("rm -rf '" + dir + "'").c_str()), 0);
  EXPECT_EQ(std::system(("mkdir -p '" + dir + "'").c_str()), 0);
  return dir;
}

Session MakeSession(const std::string& id, EventTime start_ns,
                    std::vector<uint32_t> services, uint32_t fragment = 0) {
  Session s;
  s.id = id;
  s.fragment_index = fragment;
  EventTime t = start_ns;
  for (uint32_t svc : services) {
    LogRecord r;
    r.time = t;
    r.session_id = id;
    r.txn_id = *TxnId::Parse("1-2");
    r.service = svc;
    r.host = svc;
    r.kind = EventKind::kAnnotation;
    r.payload = "x=" + std::string(64, 'a');
    s.records.push_back(std::move(r));
    t += kNanosPerMilli;
  }
  return s;
}

TEST(DiskFaultDegradation, PruneFailureIsCountedAndRetriedNextRotation) {
  const std::string dir = MakeTempDir("ts_diskfault_prune");
  CheckpointerOptions options;
  options.dir = dir;
  options.retain = 1;
  options.interval_ms = 0;
  Checkpointer ckpt(options);
  CheckpointState state;
  state.resume_offset = 1;
  ASSERT_TRUE(ckpt.Write(state));
  ASSERT_EQ(ckpt.ListSnapshots().size(), 1u);

  FailUnlinkInjector injector;
  {
    ScopedFsFaultInjector scoped(&injector);
    ASSERT_TRUE(ckpt.Write(state));  // Rotation's prune hits the bad unlink.
  }
  EXPECT_GE(ckpt.prune_failures(), 1u);
  // The victim survived (unlink failed) alongside the new snapshot...
  EXPECT_EQ(ckpt.ListSnapshots().size(), 2u);
  // ...and the next healed rotation reclaims the whole backlog: prune works
  // off the directory listing, not a remembered victim set.
  ASSERT_TRUE(ckpt.Write(state));
  EXPECT_EQ(ckpt.ListSnapshots().size(), 1u);
  EXPECT_EQ(std::system(("rm -rf '" + dir + "'").c_str()), 0);
}

TEST(DiskFaultDegradation, ColdStartUnlinksStaleTmpFiles) {
  const std::string dir = MakeTempDir("ts_diskfault_tmp");
  // A crashed spill's partial write, plus an innocent bystander file the
  // cleanup must not touch.
  const std::string stale = dir + "/cold-0000000099.seg.tmp";
  const std::string bystander = dir + "/notes.txt";
  for (const std::string& path : {stale, bystander}) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("leftover", f);
    std::fclose(f);
  }

  ColdTierOptions options;
  options.dir = dir;
  ColdTier cold(options);
  ASSERT_TRUE(cold.Start());
  EXPECT_EQ(cold.stats().tmp_cleaned, 1u);
  EXPECT_FALSE(FileExists(stale));
  EXPECT_TRUE(FileExists(bystander));
  EXPECT_EQ(std::system(("rm -rf '" + dir + "'").c_str()), 0);
}

TEST(DiskFaultDegradation, ColdTierShedsWithExactAccountingAndRecovers) {
  const std::string dir = MakeTempDir("ts_diskfault_shed");
  BrokenDiskInjector disk;

  ColdTierOptions options;
  options.dir = dir;
  options.segment_target_bytes = 1;  // Spill eagerly.
  options.spill_retry_limit = 2;
  options.spill_backoff_ms = 1;
  ColdTier cold(options);
  ASSERT_TRUE(cold.Start());  // Discovery runs before the disk "breaks".

  ScopedFsFaultInjector scoped(&disk);
  const int kSessions = 8;
  for (int i = 0; i < kSessions; ++i) {
    cold.Append(MakeSession("S" + std::to_string(i), i * kNanosPerMilli,
                            {static_cast<uint32_t>(i % 3)}));
  }
  // FlushPending reports each write failure promptly (the checkpoint
  // barrier aborts its snapshot on false), while the spill thread keeps
  // retrying behind it; after spill_retry_limit consecutive failures the
  // batch is shed and the flush completes — a dead disk never wedges the
  // barrier forever.
  bool flushed = false;
  for (int i = 0; i < 10'000 && !flushed; ++i) {
    flushed = cold.FlushPending();
  }
  ASSERT_TRUE(flushed);

  ColdTier::Stats stats = cold.stats();
  EXPECT_EQ(stats.pending, 0u);
  EXPECT_GE(stats.shed_batches, 1u);
  EXPECT_EQ(stats.shed_sessions, static_cast<uint64_t>(kSessions));
  EXPECT_GT(stats.shed_bytes, 0u);
  EXPECT_TRUE(stats.shedding);
  EXPECT_GE(stats.write_failures, 2u);
  // Exact accounting: every accepted append is either durable or counted
  // shed — nothing vanishes silently.
  EXPECT_EQ(stats.spilled, stats.sessions + stats.shed_sessions);
  EXPECT_EQ(stats.sessions, 0u);
  // A shed session is a plain cold miss, never a wrong answer.
  EXPECT_FALSE(cold.Contains("S0", 0));
  EXPECT_FALSE(cold.Get("S0", 0).has_value());

  // Heal the disk: new appends spill normally and the flag clears.
  disk.broken.store(false, std::memory_order_relaxed);
  cold.Append(MakeSession("HEALED", 0, {7}));
  EXPECT_TRUE(cold.FlushPending());
  stats = cold.stats();
  EXPECT_FALSE(stats.shedding);
  EXPECT_EQ(stats.sessions, 1u);
  EXPECT_EQ(stats.spilled, stats.sessions + stats.shed_sessions);
  ASSERT_TRUE(cold.Get("HEALED", 0).has_value());
  EXPECT_EQ(std::system(("rm -rf '" + dir + "'").c_str()), 0);
}

TEST(DiskFaultDegradation, ServingPreadRetriesOnceThenCountsTheMiss) {
  const std::string dir = MakeTempDir("ts_diskfault_pread");
  ColdTierOptions options;
  options.dir = dir;
  ColdTier cold(options);
  ASSERT_TRUE(cold.Start());
  cold.Append(MakeSession("DURABLE", 0, {1, 2}));
  ASSERT_TRUE(cold.FlushPending());

  FailPreadsInjector disk;
  ScopedFsFaultInjector scoped(&disk);

  // One transient failure: the retry serves the session.
  disk.fail_left.store(1, std::memory_order_relaxed);
  ASSERT_TRUE(cold.Get("DURABLE", 0).has_value());
  ColdTier::Stats stats = cold.stats();
  EXPECT_EQ(stats.read_retries, 1u);
  EXPECT_EQ(stats.corrupt, 0u);

  // A persistent failure degrades to a counted miss — never a wrong answer,
  // never a crash, and the segment itself is untouched.
  disk.fail_left.store(2, std::memory_order_relaxed);
  EXPECT_FALSE(cold.Get("DURABLE", 0).has_value());
  stats = cold.stats();
  EXPECT_EQ(stats.read_retries, 2u);
  EXPECT_GE(stats.corrupt, 1u);

  // Healed: the same candidate serves again.
  ASSERT_TRUE(cold.Get("DURABLE", 0).has_value());
  EXPECT_EQ(std::system(("rm -rf '" + dir + "'").c_str()), 0);
}

std::shared_ptr<std::vector<std::string>> MakeArchive(double records_per_sec,
                                                      EventTime seconds) {
  GeneratorConfig config;
  config.seed = 99;
  config.duration_ns = seconds * kNanosPerSecond;
  config.target_records_per_sec = records_per_sec;
  TraceGenerator gen(config);
  auto lines = std::make_shared<std::vector<std::string>>();
  Epoch epoch = 0;
  std::vector<LogRecord> records;
  while (gen.NextEpoch(&epoch, &records)) {
    for (const auto& r : records) {
      lines->push_back(ToWireFormat(r));
    }
  }
  return lines;
}

TEST(DiskFaultDegradation, AsyncCheckpointerDegradesThenRecovers) {
  const std::string dir = MakeTempDir("ts_diskfault_ckpt");
  const auto lines = MakeArchive(/*records_per_sec=*/500, /*seconds=*/1);

  BrokenDiskInjector disk;
  ScopedFsFaultInjector scoped(&disk);

  CheckpointerOptions ckpt_options;
  ckpt_options.dir = dir;
  ckpt_options.interval_ms = 0;
  Checkpointer ckpt(ckpt_options);

  SessionStore::Options store_options;
  store_options.max_bytes = 1ull << 30;
  SessionStore store(store_options);
  LivePipelineOptions pipeline_options;
  pipeline_options.workers = 2;
  LivePipeline pipeline(pipeline_options,
                       [&](Session&& s) { store.Insert(std::move(s)); });

  AsyncCheckpointer::Options ac_options;
  ac_options.write_retry_limit = 2;
  ac_options.write_retry_backoff_ms = 1;
  AsyncCheckpointer ac(&ckpt, &pipeline, &store, ac_options);

  uint64_t fed = 0;
  for (const auto& l : *lines) {
    pipeline.FeedLine(l);
    ++fed;
  }
  pipeline.Flush();

  // Broken disk: both attempts fail, the snapshot is dropped, the episode is
  // fully counted — and ingest was never blocked on any of it.
  ASSERT_TRUE(ac.RequestCheckpoint(fed));
  ac.Drain();
  EXPECT_GE(ac.write_failures(), 2u);
  EXPECT_TRUE(ac.degraded());
  EXPECT_EQ(ac.snapshots_dropped(), 1u);
  EXPECT_EQ(ckpt.snapshots_taken(), 0u);

  MetricsRegistry registry;
  ac.RegisterMetrics(&registry);
  int64_t degraded_gauge = -1;
  int64_t failures_gauge = -1;
  for (const auto& [name, value] : registry.Snapshot()) {
    if (name == "ckpt_degraded") degraded_gauge = value;
    if (name == "ckpt_write_failures") failures_gauge = value;
  }
  EXPECT_EQ(degraded_gauge, 1);
  EXPECT_GE(failures_gauge, 2);

  // Healed disk: the next cadence tick recovers without operator action.
  disk.broken.store(false, std::memory_order_relaxed);
  ASSERT_TRUE(ac.RequestCheckpoint(fed));
  ac.Drain();
  EXPECT_FALSE(ac.degraded());
  EXPECT_EQ(ckpt.snapshots_taken(), 1u);
  CheckpointState restored;
  EXPECT_TRUE(ckpt.RestoreLatest(&restored).restored);
  EXPECT_EQ(restored.resume_offset, fed);

  pipeline.Finish();
  EXPECT_EQ(std::system(("rm -rf '" + dir + "'").c_str()), 0);
}

TEST(DiskFaultDegradation, FailedDurabilityBarrierAbortsTheSnapshot) {
  const std::string dir = MakeTempDir("ts_diskfault_barrier");
  CheckpointerOptions ckpt_options;
  ckpt_options.dir = dir;
  ckpt_options.interval_ms = 0;
  Checkpointer ckpt(ckpt_options);

  SessionStore::Options store_options;
  store_options.max_bytes = 1ull << 30;
  SessionStore store(store_options);
  LivePipelineOptions pipeline_options;
  pipeline_options.workers = 1;
  LivePipeline pipeline(pipeline_options,
                       [&](Session&& s) { store.Insert(std::move(s)); });

  std::atomic<bool> barrier_ok{false};
  AsyncCheckpointer::Options ac_options;
  ac_options.write_retry_limit = 2;
  ac_options.write_retry_backoff_ms = 1;
  ac_options.before_write = [&barrier_ok] {
    return barrier_ok.load(std::memory_order_relaxed);
  };
  AsyncCheckpointer ac(&ckpt, &pipeline, &store, ac_options);

  // The cold tier can't make the preceding evictions durable: the snapshot
  // must not be published — publishing it would teach a restore to skip
  // replaying sessions that exist nowhere.
  ASSERT_TRUE(ac.RequestCheckpoint(0));
  ac.Drain();
  EXPECT_EQ(ckpt.snapshots_taken(), 0u);
  EXPECT_GE(ac.write_failures(), 2u);
  EXPECT_TRUE(ac.degraded());

  barrier_ok.store(true, std::memory_order_relaxed);
  ASSERT_TRUE(ac.RequestCheckpoint(0));
  ac.Drain();
  EXPECT_EQ(ckpt.snapshots_taken(), 1u);
  EXPECT_FALSE(ac.degraded());

  pipeline.Finish();
  EXPECT_EQ(std::system(("rm -rf '" + dir + "'").c_str()), 0);
}

// --- Seeded end-to-end schedules (the tentpole conformance property) ---

// Exploratory-lane width, shared with the transport suite (see
// fault_conformance_test.cc): the nightly soak scales via
// TS_FAULT_SCHEDULE_MULTIPLIER, clamped against ctest timeouts.
uint64_t ScheduleMultiplier() {
  const char* text = std::getenv("TS_FAULT_SCHEDULE_MULTIPLIER");
  if (text == nullptr || *text == '\0') {
    return 1;
  }
  const uint64_t value = std::strtoull(text, nullptr, 10);
  return value < 1 ? 1 : (value > 20 ? 20 : value);
}

struct InMemoryBaseline {
  uint64_t sessions = 0;
  uint64_t store_digest = 0;
};

// The determinism contract's reference point: the same lines fed straight
// into the pipeline — no sockets, no disk, no faults.
InMemoryBaseline RunInMemory(const std::vector<std::string>& lines) {
  InMemoryBaseline result;
  SessionStore::Options store_options;
  store_options.max_bytes = 1ull << 30;
  SessionStore store(store_options);
  std::mutex mu;
  std::set<std::string> ids;
  LivePipelineOptions options;
  options.workers = 2;
  LivePipeline pipeline(options, [&](Session&& s) {
    {
      std::lock_guard<std::mutex> lock(mu);
      ids.insert(s.id);
    }
    store.Insert(std::move(s));
  });
  for (const auto& l : lines) {
    pipeline.FeedLine(l);
  }
  pipeline.Finish();
  result.sessions = pipeline.sessions_closed();
  result.store_digest = ChainedStoreDigest(store, ids);
  return result;
}

struct DiskScheduleResult {
  bool eos = false;
  int incarnations = 0;
  int crashes = 0;
  uint64_t snapshots_written = 0;
  uint64_t snapshot_attempts_failed = 0;  // Aborted publishes (disk faults).
  uint64_t restore_fallbacks = 0;
  uint64_t faults_fired = 0;  // Disk-fault events that actually bit.
  uint64_t records_in = 0;
  uint64_t parse_failures = 0;
  uint64_t replayed_duplicates = 0;
  uint64_t sessions = 0;
  uint64_t cold_sessions = 0;
  uint64_t cold_segments = 0;
  uint64_t tiered_digest = 0;
};

// One seeded schedule: kill/restart cycles over the full tiered ingest path
// (LogServer -> SocketIngestSource -> LivePipeline -> SessionStore ->
// ColdTier spill, synchronous Checkpointer at a seeded cadence), with each
// incarnation's durability I/O attacked by a ScriptedDiskInjector driving a
// fresh disk-aggressive plan. The injector is installed only after restore
// and segment discovery (this suite attacks the *write* path: a durable,
// valid file that fails a read is the corruption suite's territory and would
// make the digest incomparable) and uninstalled at the kill instant — a dead
// process does no I/O — and before the final flush + digest reads.
DiskScheduleResult RunDiskFaultSchedule(
    std::shared_ptr<std::vector<std::string>> archive_lines, uint64_t seed) {
  DiskScheduleResult out;
  Rng rng(seed ^ 0xD15CFA17B3A7E901ULL);
  const uint64_t total = archive_lines->size();

  const std::string base_dir = ::testing::TempDir() + "ts_diskfault_" +
                               std::to_string(::getpid()) + "_" +
                               std::to_string(seed);
  const std::string cleanup = "rm -rf '" + base_dir + "'";
  EXPECT_EQ(std::system(cleanup.c_str()), 0);
  const std::string ckpt_dir = base_dir + "/ckpt";
  const std::string cold_dir = base_dir + "/cold";
  EXPECT_EQ(std::system(("mkdir -p '" + base_dir + "'").c_str()), 0);

  LogServerOptions server_options;
  LogServer server(server_options, archive_lines);
  EXPECT_TRUE(server.Start());
  std::thread server_thread([&server] { server.Run(); });

  int crashes_left = 1 + static_cast<int>(rng.NextBelow(3));
  bool eos = false;
  for (int incarnation = 0; incarnation < 16 && !eos; ++incarnation) {
    ++out.incarnations;

    // A fresh disk-fault plan per incarnation, seeded from (schedule seed,
    // incarnation) so every restart faces a new storm at new byte offsets.
    // Declared before the tier and the checkpointer: the injector must
    // outlive every thread that might consult it.
    FaultProfile disk_profile;
    EXPECT_TRUE(
        FaultPlan::ResolveProfile("disk-aggressive", 256u << 10, &disk_profile));
    ScriptedDiskInjector disk(FaultPlan::FromSeed(
        seed * 1'000'003ull + static_cast<uint64_t>(incarnation),
        "disk-aggressive", disk_profile));

    CheckpointerOptions ckpt_options;
    ckpt_options.dir = ckpt_dir;
    ckpt_options.retain = 2 + static_cast<size_t>(rng.NextBelow(2));
    ckpt_options.interval_ms = 0;
    Checkpointer ckpt(ckpt_options);
    CheckpointState state;
    const RestoreResult restored = ckpt.RestoreLatest(&state);
    out.restore_fallbacks += restored.fallbacks;
    const uint64_t resume = state.resume_offset;
    const uint64_t base_records = state.records;
    const uint64_t base_parse_failures = state.parse_failures;
    EXPECT_LE(resume, total);

    ColdTierOptions cold_options;
    cold_options.dir = cold_dir;
    cold_options.segment_target_bytes = 16u << 10;  // Many small segments.
    // Conformance runs never shed: every fault window in the plan is finite,
    // so retrying always converges, and shedding (counted loss) would make
    // the digest incomparable by design. The shed path is proven separately
    // with a permanently broken disk (ColdTierShedsWithExactAccounting...).
    cold_options.spill_retry_limit = 1'000'000;
    cold_options.spill_backoff_ms = 1;
    ColdTier cold(cold_options);
    EXPECT_TRUE(cold.Start());

    SessionStore::Options store_options;
    store_options.max_bytes = 64u << 10;  // Tiny hot window: spill constantly.
    SessionStore store(store_options);
    store.SetEvictionSink([&cold](Session&& s) { cold.Append(std::move(s)); },
                          [&cold] { cold.WaitForSpace(); });
    std::atomic<uint64_t> duplicates{0};

    LivePipelineOptions pipeline_options;
    pipeline_options.workers = 1 + rng.NextBelow(4);
    LivePipeline pipeline(pipeline_options, [&](Session&& s) {
      if (store.Contains(s.id, s.fragment_index) ||
          cold.Contains(s.id, s.fragment_index)) {
        duplicates.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      store.Insert(std::move(s));
    });
    RestoreLiveCheckpoint(std::move(state), &pipeline, &store);

    SocketIngestOptions client_options;
    client_options.port = server.port();
    client_options.backoff_base_ms = 1;
    client_options.backoff_max_ms = 20;
    client_options.resume_offset = resume;
    SocketIngestSource client(client_options);

    // Restore + discovery ran clean; from here on the disk misbehaves.
    InstallFsFaultInjector(&disk);

    const bool crash_this = crashes_left > 0 && resume < total;
    const uint64_t crash_at =
        crash_this ? resume + 1 + rng.NextBelow(total - resume) : 0;
    const uint64_t ckpt_every = 100 + rng.NextBelow(900);

    uint64_t fed = resume;
    uint64_t since_ckpt = 0;
    bool crashed = false;
    std::vector<std::string> batch;
    while (!crashed) {
      batch.clear();
      const auto poll = client.PollLines(&batch, /*timeout_ms=*/200);
      for (auto& line : batch) {
        if (crash_this && fed == crash_at) {
          crashed = true;  // SIGKILL: the rest of the batch never lands.
          break;
        }
        pipeline.FeedLine(std::move(line));
        ++fed;
        ++since_ckpt;
      }
      if (crashed) {
        break;
      }
      pipeline.Flush();
      if (poll == SocketIngestSource::Poll::kEndOfStream) {
        eos = true;
        break;
      }
      if (poll == SocketIngestSource::Poll::kFailed) {
        break;
      }
      if (since_ckpt >= ckpt_every) {
        CheckpointState snap =
            CaptureLiveCheckpoint(&pipeline, store, client.records_received());
        snap.records += base_records;
        snap.parse_failures += base_parse_failures;
        // The durability barrier, now under fire: the snapshot may only be
        // published once every preceding eviction is durable in cold. A
        // failed barrier or a failed snapshot write aborts the attempt —
        // exactly AsyncCheckpointer's degraded-mode contract — leaving the
        // previous (fully valid) snapshots in charge: the durable-prefix
        // property.
        if (!cold.FlushPending()) {
          ++out.snapshot_attempts_failed;
        } else if (ckpt.Write(snap)) {
          ++out.snapshots_written;
        } else {
          ++out.snapshot_attempts_failed;
        }
        since_ckpt = 0;
      }
    }
    if (crashed) {
      cold.Abandon();  // The kill instant: pending spills die with the
                       // process; durable segments stay.
    }
    // Whether this incarnation dies or finishes, the remaining teardown
    // (final flush, digest preads, next incarnation's restore) runs on a
    // healed disk: a dead process does no I/O, and read-side attacks on
    // durable files belong to the corruption suite.
    InstallFsFaultInjector(nullptr);
    out.faults_fired += TotalFired(disk.counters());
    pipeline.Finish();
    if (crashed) {
      ++out.crashes;
      --crashes_left;
      continue;
    }
    if (!eos) {
      break;  // Transport failure: surface as a non-conformant run.
    }
    // A segment write already in flight at the heal instant may still fail
    // once (it consumed its fault before the uninstall); the retry runs on
    // the healed disk and must converge.
    bool flushed = false;
    for (int i = 0; i < 100 && !flushed; ++i) {
      flushed = cold.FlushPending();
    }
    EXPECT_TRUE(flushed);
    out.eos = true;
    out.records_in = base_records + pipeline.records();
    out.parse_failures = base_parse_failures + pipeline.parse_failures();
    out.replayed_duplicates = duplicates.load(std::memory_order_relaxed);
    const ColdTier::Stats cold_stats = cold.stats();
    out.cold_sessions = cold_stats.sessions;
    out.cold_segments = cold_stats.segments;
    EXPECT_EQ(cold_stats.pending, 0u);
    // Disk faults fail writes (counted, retried); they never publish a
    // damaged segment and never shed under a finite plan.
    EXPECT_EQ(cold_stats.corrupt, 0u);
    EXPECT_EQ(cold_stats.shed_sessions, 0u);

    std::set<std::string> all_ids;
    store.ForEachSession([&](const Session& s) { all_ids.insert(s.id); });
    cold.ForEachId([&](const std::string& id) { all_ids.insert(id); });
    std::string canon;
    for (const auto& id : all_ids) {
      const std::vector<Session> merged = MergeTieredFragments(
          store.GetAllFragments(id), cold.GetAllFragments(id));
      for (const auto& s : merged) {
        out.tiered_digest ^= SessionDigest(s, &canon);
        out.tiered_digest = SipHash24(out.tiered_digest);
      }
      out.sessions += merged.size();
    }
  }

  server.Stop();
  server_thread.join();
  EXPECT_EQ(std::system(cleanup.c_str()), 0);
  return out;
}

// Asserts the durable-prefix property for one seed and returns how many
// disk-fault events actually fired (the fixture asserts the sweep as a whole
// drew blood — a single seed's plan is allowed to land all its offsets past
// the bytes the run happened to move).
uint64_t CheckDiskFaultConformance(
    std::shared_ptr<std::vector<std::string>> archive,
    const InMemoryBaseline& baseline, uint64_t seed) {
  const DiskScheduleResult out = RunDiskFaultSchedule(archive, seed);
  const std::string banner =
      "disk fault schedule seed " + std::to_string(seed) + " (" +
      std::to_string(out.crashes) + " crash(es), " +
      std::to_string(out.incarnations) + " incarnation(s), " +
      std::to_string(out.snapshots_written) + " snapshot(s), " +
      std::to_string(out.snapshot_attempts_failed) +
      " failed snapshot attempt(s), " + std::to_string(out.faults_fired) +
      " disk fault(s) fired, " + std::to_string(out.restore_fallbacks) +
      " restore fallback(s), " + std::to_string(out.cold_segments) +
      " cold segment(s), " + std::to_string(out.replayed_duplicates) +
      " replayed duplicate(s))";
  EXPECT_TRUE(out.eos) << banner;
  if (!out.eos) {
    return out.faults_fired;
  }
  EXPECT_EQ(out.crashes, out.incarnations - 1) << banner;
  EXPECT_EQ(out.records_in, archive->size()) << banner;
  EXPECT_EQ(out.parse_failures, 0u) << banner;
  // Every restart found a fully valid snapshot set: no restore ever fell
  // back past a damaged file, because no damaged file was ever published.
  EXPECT_EQ(out.restore_fallbacks, 0u) << banner;
  EXPECT_GT(out.cold_sessions, 0u) << banner;
  EXPECT_GE(out.cold_segments, 1u) << banner;
  EXPECT_EQ(out.sessions, baseline.sessions) << banner;
  EXPECT_EQ(out.tiered_digest, baseline.store_digest) << banner;
  return out.faults_fired;
}

class DiskFaultConformance : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    archive_ = new std::shared_ptr<std::vector<std::string>>(
        MakeArchive(/*records_per_sec=*/2'000, /*seconds=*/2));
    baseline_ = new InMemoryBaseline(RunInMemory(**archive_));
    ASSERT_GT((*archive_)->size(), 2'000u);
    ASSERT_GT(baseline_->sessions, 0u);
  }
  static void TearDownTestSuite() {
    delete archive_;
    delete baseline_;
    archive_ = nullptr;
    baseline_ = nullptr;
  }

  uint64_t CheckSeed(uint64_t seed) {
    return CheckDiskFaultConformance(*archive_, *baseline_, seed);
  }

 private:
  static std::shared_ptr<std::vector<std::string>>* archive_;
  static InMemoryBaseline* baseline_;
};

std::shared_ptr<std::vector<std::string>>* DiskFaultConformance::archive_ =
    nullptr;
InMemoryBaseline* DiskFaultConformance::baseline_ = nullptr;

TEST_F(DiskFaultConformance, FirstTenSeededSchedules) {
  uint64_t fired = 0;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    fired += CheckSeed(seed);
    if (HasFatalFailure() || HasNonfatalFailure()) {
      return;  // The banner already names the seed.
    }
  }
  // The sweep as a whole must have drawn blood, or it proved nothing.
  EXPECT_GT(fired, 0u);
}

TEST_F(DiskFaultConformance, SecondTenSeededSchedules) {
  uint64_t fired = 0;
  for (uint64_t seed = 10; seed < 20; ++seed) {
    fired += CheckSeed(seed);
    if (HasFatalFailure() || HasNonfatalFailure()) {
      return;
    }
  }
  EXPECT_GT(fired, 0u);
}

TEST_F(DiskFaultConformance, ExploratorySeedFromEnvironment) {
  const char* seed_text = std::getenv("TS_FAULT_SEED");
  if (seed_text == nullptr || *seed_text == '\0') {
    GTEST_SKIP() << "set TS_FAULT_SEED to run exploratory disk schedules";
  }
  const uint64_t base = std::strtoull(seed_text, nullptr, 10);
  const uint64_t schedules = 4 * ScheduleMultiplier();
  for (uint64_t i = 0; i < schedules && !HasFailure(); ++i) {
    CheckSeed(base + i * 104'729);
  }
  if (HasFailure()) {
    if (const char* artifact = std::getenv("TS_FAULT_ARTIFACT")) {
      FILE* f = std::fopen(artifact, "a");
      if (f != nullptr) {
        std::fprintf(f,
                     "# ts_fault exploratory disk-fault-schedule failure\n"
                     "TS_FAULT_SEED=%llu\n",
                     static_cast<unsigned long long>(base));
        std::fclose(f);
      }
    }
  }
}

}  // namespace
}  // namespace ts
