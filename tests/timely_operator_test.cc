// Unit tests for the operator-level machinery: output staging and routing,
// notificator semantics, exchange hubs, and the input-session protocol.
#include <gtest/gtest.h>

#include "src/timely/operator.h"
#include "src/timely/runtime.h"

namespace ts {
namespace {

TEST(ExchangeHub, SendDrainPerDestination) {
  ExchangeHub<int> hub(3);
  hub.Send(1, 0, {1, 2});
  hub.Send(1, 1, {3});
  hub.Send(2, 0, {4});

  std::vector<Batch<int>> got;
  EXPECT_FALSE(hub.Drain(0, got));
  EXPECT_TRUE(hub.Drain(1, got));
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].epoch, 0u);
  EXPECT_EQ(got[0].data, (std::vector<int>{1, 2}));
  EXPECT_EQ(got[1].epoch, 1u);

  got.clear();
  EXPECT_TRUE(hub.Drain(2, got));
  ASSERT_EQ(got.size(), 1u);
  // A second drain finds nothing.
  got.clear();
  EXPECT_FALSE(hub.Drain(2, got));
}

TEST(SharedRuntime, HubTypeChecked) {
  SharedRuntime rt(2);
  auto* h1 = rt.Hub<int>(0);
  auto* h2 = rt.Hub<int>(0);
  EXPECT_EQ(h1, h2);  // Same edge -> same hub.
  EXPECT_NE(rt.Hub<int>(1), h1);
  EXPECT_DEATH(rt.Hub<double>(0), "different record type");
}

TEST(SharedRuntime, ProgressBroadcastSkipsSender) {
  SharedRuntime rt(3);
  ProgressBatch batch;
  batch.Add(0, 1, +1);
  rt.BroadcastProgress(/*from=*/1, batch);

  std::vector<ProgressBatch> got;
  EXPECT_FALSE(rt.DrainProgress(1, got));  // Sender does not receive its own.
  EXPECT_TRUE(rt.DrainProgress(0, got));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].deltas.size(), 1u);
  got.clear();
  EXPECT_TRUE(rt.DrainProgress(2, got));
  EXPECT_EQ(rt.counters().progress_batches.load(), 2u);
  EXPECT_EQ(rt.counters().progress_deltas.load(), 2u);
}

struct OutputFixture {
  SharedRuntime rt{2};
  RuntimeCounters counters;
  ExchangeHub<int> pipeline_hub{2};
  ExchangeHub<int> routed_hub{2};

  OutputSession<int> MakeSession(size_t self) {
    OutputSession<int> out(self, 2, &counters);
    return out;
  }
};

TEST(OutputSession, PipelineTargetStaysOnWorker) {
  OutputFixture f;
  auto out = f.MakeSession(/*self=*/1);
  out.AddTarget(OutputTarget<int>{&f.pipeline_hub, 0, /*msg_loc=*/10, nullptr});
  out.Give(3, 42);
  out.GiveVec(3, {7, 8});
  ProgressBatch deltas;
  out.Flush(deltas);

  // One batch at epoch 3, accounted once, delivered to worker 1 only.
  ASSERT_EQ(deltas.deltas.size(), 1u);
  EXPECT_EQ(deltas.deltas[0].loc, 10);
  EXPECT_EQ(deltas.deltas[0].epoch, 3u);
  EXPECT_EQ(deltas.deltas[0].delta, 1);
  std::vector<Batch<int>> got;
  EXPECT_FALSE(f.pipeline_hub.Drain(0, got));
  EXPECT_TRUE(f.pipeline_hub.Drain(1, got));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].data, (std::vector<int>{42, 7, 8}));
  EXPECT_EQ(f.counters.records_exchanged.load(), 0u);  // Pipeline edge.
}

TEST(OutputSession, RoutedTargetPartitionsByHash) {
  OutputFixture f;
  auto out = f.MakeSession(0);
  out.AddTarget(OutputTarget<int>{&f.routed_hub, 1, /*msg_loc=*/11,
                                  [](const int& v) { return static_cast<uint64_t>(v); }});
  for (int v = 0; v < 10; ++v) {
    out.Give(0, v);
  }
  ProgressBatch deltas;
  out.Flush(deltas);
  ASSERT_EQ(deltas.deltas.size(), 2u);  // One batch per destination worker.

  std::vector<Batch<int>> even, odd;
  ASSERT_TRUE(f.routed_hub.Drain(0, even));
  ASSERT_TRUE(f.routed_hub.Drain(1, odd));
  EXPECT_EQ(even[0].data, (std::vector<int>{0, 2, 4, 6, 8}));
  EXPECT_EQ(odd[0].data, (std::vector<int>{1, 3, 5, 7, 9}));
  EXPECT_EQ(f.counters.records_exchanged.load(), 10u);
}

TEST(OutputSession, FanOutCopiesToEveryTarget) {
  OutputFixture f;
  ExchangeHub<int> second{2};
  auto out = f.MakeSession(0);
  out.AddTarget(OutputTarget<int>{&f.pipeline_hub, 0, 10, nullptr});
  out.AddTarget(OutputTarget<int>{&second, 2, 12, nullptr});
  out.Give(1, 99);
  ProgressBatch deltas;
  out.Flush(deltas);
  EXPECT_EQ(deltas.deltas.size(), 2u);

  std::vector<Batch<int>> a, b;
  ASSERT_TRUE(f.pipeline_hub.Drain(0, a));
  ASSERT_TRUE(second.Drain(0, b));
  EXPECT_EQ(a[0].data, b[0].data);
}

TEST(OutputSession, SeparateEpochsSeparateBatches) {
  OutputFixture f;
  auto out = f.MakeSession(0);
  out.AddTarget(OutputTarget<int>{&f.pipeline_hub, 0, 10, nullptr});
  out.Give(1, 1);
  out.Give(2, 2);
  out.Give(1, 11);
  ProgressBatch deltas;
  out.Flush(deltas);
  EXPECT_EQ(deltas.deltas.size(), 2u);
  std::vector<Batch<int>> got;
  ASSERT_TRUE(f.pipeline_hub.Drain(0, got));
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].epoch, 1u);
  EXPECT_EQ(got[0].data, (std::vector<int>{1, 11}));
  EXPECT_EQ(got[1].epoch, 2u);
}

TEST(Notificator, DeduplicatesAndAccountsCapabilities) {
  NotificatorHandle n;
  n.NotifyAt(4);
  n.NotifyAt(4);
  n.NotifyAt(2);
  ProgressBatch deltas;
  n.FlushRequests(/*cap_loc=*/5, deltas);
  // Two distinct epochs -> two capability retentions.
  ASSERT_EQ(deltas.deltas.size(), 2u);
  for (const auto& d : deltas.deltas) {
    EXPECT_EQ(d.loc, 5);
    EXPECT_EQ(d.delta, 1);
  }
  // Re-flushing adds nothing.
  deltas.clear();
  n.FlushRequests(5, deltas);
  EXPECT_TRUE(deltas.empty());
}

TEST(Notificator, DeliversInEpochOrderUpToFrontier) {
  NotificatorHandle n;
  n.NotifyAt(3);
  n.NotifyAt(1);
  n.NotifyAt(7);
  ProgressBatch deltas;
  n.FlushRequests(5, deltas);
  deltas.clear();

  std::vector<Epoch> fired;
  n.Deliver(Frontier::At(4), 5, deltas, [&](Epoch e) { fired.push_back(e); });
  EXPECT_EQ(fired, (std::vector<Epoch>{1, 3}));
  // Capability drops accounted for the fired epochs.
  ASSERT_EQ(deltas.deltas.size(), 2u);
  EXPECT_EQ(deltas.deltas[0].epoch, 1u);
  EXPECT_EQ(deltas.deltas[0].delta, -1);
  EXPECT_TRUE(n.has_pending());  // Epoch 7 still waiting.

  fired.clear();
  deltas.clear();
  n.Deliver(Frontier::Done(), 5, deltas, [&](Epoch e) { fired.push_back(e); });
  EXPECT_EQ(fired, (std::vector<Epoch>{7}));
  EXPECT_FALSE(n.has_pending());
}

TEST(InputOperator, ProtocolViolationsAbort) {
  RuntimeCounters counters;
  InputOperator<int> input(/*node_id=*/0, /*cap_loc=*/0, 0, 1, &counters);
  input.AdvanceTo(2);
  EXPECT_DEATH(input.AdvanceTo(2), "monotonically");
  EXPECT_DEATH(input.AdvanceTo(1), "monotonically");
  input.Close();
  EXPECT_DEATH(input.Give(1), "after Close");
}

TEST(InputOperator, CapabilityMovesArePublishedOnWork) {
  RuntimeCounters counters;
  ExchangeHub<int> hub(1);
  InputOperator<int> input(0, /*cap_loc=*/7, 0, 1, &counters);
  input.AddTarget(OutputTarget<int>{&hub, 0, /*msg_loc=*/9, nullptr});

  input.Give(5);
  input.AdvanceTo(3);
  ProgressBatch deltas;
  input.Work(deltas);
  // Data increment must precede the capability drop within the batch.
  ASSERT_EQ(deltas.deltas.size(), 3u);
  EXPECT_EQ(deltas.deltas[0].loc, 9);
  EXPECT_EQ(deltas.deltas[0].delta, 1);
  EXPECT_EQ(deltas.deltas[1].loc, 7);
  EXPECT_EQ(deltas.deltas[1].epoch, 0u);
  EXPECT_EQ(deltas.deltas[1].delta, -1);
  EXPECT_EQ(deltas.deltas[2].epoch, 3u);
  EXPECT_EQ(deltas.deltas[2].delta, 1);
}

}  // namespace
}  // namespace ts
