// Unit tests for ts_log: hierarchical transaction IDs and the wire format.
#include <gtest/gtest.h>

#include "src/common/siphash.h"
#include "src/log/record.h"
#include "src/log/txn_id.h"
#include "src/log/wire_format.h"

namespace ts {
namespace {

TEST(TxnId, ParseAndFormatRoundTrip) {
  for (const char* s : {"1", "26-3-11-5-1", "0", "4294967295", "7-7-7"}) {
    auto id = TxnId::Parse(s);
    ASSERT_TRUE(id.has_value()) << s;
    EXPECT_EQ(id->ToString(), s);
  }
}

TEST(TxnId, ParseRejectsMalformed) {
  for (const char* s : {"", "-", "1-", "-1", "1--2", "a", "1-b", "1.2",
                        "4294967296" /* overflow */, "1-2-99999999999"}) {
    EXPECT_FALSE(TxnId::Parse(s).has_value()) << s;
  }
}

TEST(TxnId, StructureAccessors) {
  const TxnId id = *TxnId::Parse("26-3-11-5-1");
  EXPECT_EQ(id.depth(), 5u);
  EXPECT_FALSE(id.IsRoot());
  EXPECT_EQ(id.root(), 26u);
  EXPECT_EQ(id.sibling_index(), 1u);
  EXPECT_EQ(id.Parent().ToString(), "26-3-11-5");
  EXPECT_EQ(id.Root().ToString(), "26");
  EXPECT_TRUE(TxnId::Parse("26")->IsRoot());
}

TEST(TxnId, AncestryIsProperPrefix) {
  const TxnId root = *TxnId::Parse("2");
  const TxnId mid = *TxnId::Parse("2-10");
  const TxnId leaf = *TxnId::Parse("2-10-1");
  const TxnId other = *TxnId::Parse("3-10");
  EXPECT_TRUE(root.IsAncestorOf(mid));
  EXPECT_TRUE(root.IsAncestorOf(leaf));
  EXPECT_TRUE(mid.IsAncestorOf(leaf));
  EXPECT_FALSE(mid.IsAncestorOf(mid));    // Not a strict ancestor of itself.
  EXPECT_FALSE(leaf.IsAncestorOf(mid));
  EXPECT_FALSE(root.IsAncestorOf(other));
}

TEST(TxnId, NumericOrderingNotLexicographic) {
  // "2-2" must sort before "2-10": component-wise numeric order, which keeps
  // siblings in index order when building trees.
  EXPECT_LT(*TxnId::Parse("2-2"), *TxnId::Parse("2-10"));
  EXPECT_LT(*TxnId::Parse("2"), *TxnId::Parse("2-1"));
  EXPECT_LT(*TxnId::Parse("1-99"), *TxnId::Parse("2"));
}

TEST(TxnId, HashDistinguishesPaths) {
  TxnIdHash hash;
  EXPECT_NE(hash(*TxnId::Parse("1-2")), hash(*TxnId::Parse("2-1")));
  EXPECT_EQ(hash(*TxnId::Parse("1-2-3")), hash(*TxnId::Parse("1-2-3")));
}

LogRecord MakeRecord() {
  LogRecord r;
  r.time = 1234567890123;
  r.session_id = "XKSHSKCBA53U088FXGE7LD8";
  r.txn_id = *TxnId::Parse("26-3-11-5-1");
  r.service = 204;
  r.host = 17;
  r.kind = EventKind::kAnnotation;
  r.payload = "q=BOS-LHR;cls=Y";
  return r;
}

TEST(WireFormat, RoundTrip) {
  const LogRecord r = MakeRecord();
  const std::string line = ToWireFormat(r);
  auto parsed = ParseWireFormat(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->time, r.time);
  EXPECT_EQ(parsed->session_id, r.session_id);
  EXPECT_EQ(parsed->txn_id, r.txn_id);
  EXPECT_EQ(parsed->service, r.service);
  EXPECT_EQ(parsed->host, r.host);
  EXPECT_EQ(parsed->kind, r.kind);
  EXPECT_EQ(parsed->payload, r.payload);
}

TEST(WireFormat, RoundTripAllKinds) {
  for (EventKind kind :
       {EventKind::kSpanStart, EventKind::kSpanEnd, EventKind::kAnnotation}) {
    LogRecord r = MakeRecord();
    r.kind = kind;
    auto parsed = ParseWireFormat(ToWireFormat(r));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->kind, kind);
  }
}

TEST(WireFormat, PayloadMayContainSeparator) {
  LogRecord r = MakeRecord();
  r.payload = "a|b|c";  // Payload is the unsplit remainder.
  auto parsed = ParseWireFormat(ToWireFormat(r));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->payload, "a|b|c");
}

TEST(WireFormat, EmptyPayload) {
  LogRecord r = MakeRecord();
  r.payload.clear();
  auto parsed = ParseWireFormat(ToWireFormat(r));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->payload.empty());
}

TEST(WireFormat, RejectsMalformedLines) {
  const char* bad[] = {
      "",
      "garbage",
      "123|sess",                                    // Too few fields.
      "abc|sess|1|svc-2|h-3|ANNOT|p",                // Non-numeric time.
      "123||1|svc-2|h-3|ANNOT|p",                    // Empty session.
      "123|sess|x|svc-2|h-3|ANNOT|p",                // Bad txn id.
      "123|sess|1|srv-2|h-3|ANNOT|p",                // Bad service prefix.
      "123|sess|1|svc-2|host-3|ANNOT|p",             // Bad host prefix.
      "123|sess|1|svc-2|h-3|WEIRD|p",                // Unknown kind.
      "123|sess|1|svc-|h-3|ANNOT|p",                 // Empty service number.
  };
  for (const char* line : bad) {
    EXPECT_FALSE(ParseWireFormat(line).has_value()) << line;
  }
}

TEST(WireFormat, ParsesNegativeTimeAsValid) {
  // Clock skew can make producer timestamps negative relative to the trace
  // origin; the parser must not reject them (the pipeline decides policy).
  auto parsed = ParseWireFormat("-5|sess|1|svc-2|h-3|ANNOT|p");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->time, -5);
}

TEST(Record, MemoryFootprintTracksCapacity) {
  LogRecord r = MakeRecord();
  const size_t base = r.MemoryFootprint();
  r.payload.append(1000, 'x');
  EXPECT_GE(r.MemoryFootprint(), base + 900);
}

TEST(Record, SessionHashIsSipHashOfId) {
  const LogRecord r = MakeRecord();
  EXPECT_EQ(SessionHash(r.session_id), SipHash24(r.session_id));
}

}  // namespace
}  // namespace ts
