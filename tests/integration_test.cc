// Cross-module integration tests: the full TS pipeline (generator -> input ->
// exchange -> sessionize -> trace trees) against ground truth computed
// directly from the generated records, with and without record loss.
#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/analytics/collectors.h"
#include "src/common/siphash.h"
#include "src/analytics/topk.h"
#include "src/core/sessionize.h"
#include "src/core/tree_ops.h"
#include "src/offline/offline_sessionizer.h"
#include "src/timely/timely.h"
#include "src/workload/generator.h"

namespace ts {
namespace {

GeneratorConfig TestGen(double loss = 0.0) {
  GeneratorConfig config;
  config.seed = 2024;
  config.duration_ns = 10 * kNanosPerSecond;
  config.target_records_per_sec = 5'000;
  config.record_loss_rate = loss;
  return config;
}

std::vector<LogRecord> Materialize(const GeneratorConfig& config) {
  TraceGenerator gen(config);
  std::vector<LogRecord> all;
  Epoch epoch;
  std::vector<LogRecord> batch;
  while (gen.NextEpoch(&epoch, &batch)) {
    for (auto& r : batch) {
      all.push_back(std::move(r));
    }
  }
  return all;
}

// Epoch-granularity reference splitter matching the online operator's
// semantics: a session splits when consecutive records are more than
// `inactivity` epochs apart.
std::map<std::string, std::vector<size_t>> ReferenceFragments(
    std::vector<LogRecord> records, Epoch inactivity) {
  auto sessions = OfflineSessionizer::Sessionize(std::move(records));
  std::map<std::string, std::vector<size_t>> fragments;
  for (const auto& s : sessions) {
    size_t count = 1;
    for (size_t i = 1; i < s.records.size(); ++i) {
      const Epoch prev = static_cast<Epoch>(s.records[i - 1].time / kNanosPerSecond);
      const Epoch cur = static_cast<Epoch>(s.records[i].time / kNanosPerSecond);
      if (cur > prev + inactivity) {
        fragments[s.id].push_back(count);
        count = 0;
      }
      ++count;
    }
    fragments[s.id].push_back(count);
  }
  return fragments;
}

struct PipelineResult {
  std::vector<Session> sessions;
  std::vector<TraceTree> trees;
};

PipelineResult RunPipeline(const std::vector<LogRecord>& records, size_t workers,
                           Epoch inactivity) {
  auto session_collector = std::make_shared<ConcurrentCollector<Session>>();
  auto tree_collector = std::make_shared<ConcurrentCollector<TraceTree>>();

  // Pre-bucket by epoch for the scripted driver.
  std::map<Epoch, std::vector<LogRecord>> by_epoch;
  for (const auto& r : records) {
    by_epoch[static_cast<Epoch>(r.time / kNanosPerSecond)].push_back(r);
  }

  Computation::Options options;
  options.workers = workers;
  Computation::Run(options, [&](Scope& scope) {
    auto [input, stream] = scope.NewInput<LogRecord>("logs");
    SessionizeOptions sess_options;
    sess_options.inactivity_epochs = inactivity;
    sess_options.track_fragments = true;
    auto [sessions, metrics] = Sessionize(scope, stream, sess_options);
    auto inspected = scope.Inspect<Session>(
        sessions, "collect_sessions",
        [session_collector](Epoch, const Session& s) { session_collector->Add(s); });
    auto trees = ConstructTraceTrees(scope, inspected);
    CollectInto<TraceTree>(scope, trees, tree_collector, "collect_trees");

    auto in = std::make_shared<InputSession<LogRecord>>(input);
    if (scope.worker_index() == 0) {
      auto it = std::make_shared<std::map<Epoch, std::vector<LogRecord>>::iterator>(
          by_epoch.begin());
      scope.AddDriver([in, it, &by_epoch]() mutable -> DriverStatus {
        if (*it == by_epoch.end()) {
          in->Close();
          return DriverStatus::kFinished;
        }
        if ((*it)->first > in->current_epoch()) {
          in->AdvanceTo((*it)->first);
        }
        in->GiveBatch(std::move((*it)->second));
        ++*it;
        return DriverStatus::kWorked;
      });
    } else {
      scope.AddDriver([in]() -> DriverStatus {
        in->Close();
        return DriverStatus::kFinished;
      });
    }
  });

  return PipelineResult{std::move(session_collector->items()),
                        std::move(tree_collector->items())};
}

TEST(Integration, OnlineSessionsMatchEpochGranularityGroundTruth) {
  const auto records = Materialize(TestGen());
  ASSERT_GT(records.size(), 20'000u);
  constexpr Epoch kInactivity = 4;
  auto result = RunPipeline(records, /*workers=*/2, kInactivity);
  auto expected = ReferenceFragments(records, kInactivity);

  std::map<std::string, std::vector<size_t>> got;
  for (const auto& s : result.sessions) {
    got[s.id].push_back(s.records.size());
  }
  for (auto& [id, sizes] : got) {
    std::sort(sizes.begin(), sizes.end());
  }
  for (auto& [id, sizes] : expected) {
    std::sort(sizes.begin(), sizes.end());
  }
  EXPECT_EQ(got.size(), expected.size());
  EXPECT_EQ(got, expected);

  // Conservation: every record ends up in exactly one session.
  size_t total = 0;
  for (const auto& s : result.sessions) {
    total += s.records.size();
  }
  EXPECT_EQ(total, records.size());
}

TEST(Integration, TreesCoverEveryObservedRootSpan) {
  const auto records = Materialize(TestGen());
  // Ground truth: distinct (session, root index) pairs and per-pair counts.
  std::map<std::pair<std::string, uint32_t>, uint32_t> expected;
  for (const auto& r : records) {
    ++expected[{r.session_id, r.txn_id.root()}];
  }
  auto result = RunPipeline(records, 2, /*inactivity=*/20);
  // With a large inactivity window and a 10s trace, no fragmentation: one
  // tree per observed root span.
  std::map<std::pair<std::string, uint32_t>, uint32_t> got;
  for (const auto& t : result.trees) {
    const auto key = std::make_pair(t.session_id(), t.root().id.root());
    EXPECT_TRUE(got.emplace(key, t.total_records()).second)
        << "duplicate tree for root span";
  }
  EXPECT_EQ(got, expected);
}

TEST(Integration, TreesAreStructurallyWellFormed) {
  const auto records = Materialize(TestGen());
  auto result = RunPipeline(records, 1, 20);
  ASSERT_GT(result.trees.size(), 500u);
  size_t multi_span = 0;
  for (const auto& t : result.trees) {
    // Root is node 0 with no parent; every other node's parent precedes it.
    EXPECT_EQ(t.root().parent, -1);
    for (size_t i = 1; i < t.nodes().size(); ++i) {
      const auto& n = t.nodes()[i];
      ASSERT_GE(n.parent, 0);
      ASSERT_LT(n.parent, static_cast<int>(i));
      EXPECT_TRUE(t.nodes()[n.parent].id.IsAncestorOf(n.id));
    }
    // No loss: nothing inferred, sibling sets complete.
    EXPECT_EQ(t.num_inferred(), 0u);
    EXPECT_EQ(t.ImpliedMissingChildren(), 0u);
    if (t.num_spans() > 1) {
      ++multi_span;
    }
    // Signature length equals span count.
    EXPECT_EQ(t.Signature().size(), t.num_spans());
  }
  EXPECT_GT(multi_span, result.trees.size() / 3);
}

TEST(Integration, RecordLossYieldsInferredNodesAndDetectableGaps) {
  // Deterministic damage injection: random loss rates need enormous traces to
  // reliably wipe out *all* records of an interior span, so instead we surgically
  // remove records that must produce each kind of detectable damage:
  //  (a) all records of node 1-1 in sessions where 1-1 has observed children
  //      -> the node must be inferred from its descendants;
  //  (b) the whole 1-2 subtree in sessions that also observed sibling 1-3
  //      -> the sibling-index gap must be reported as implied-missing.
  auto records = Materialize(TestGen());
  std::map<std::string, std::pair<bool, bool>> session_flags;  // (a-able, b-able)
  for (const auto& r : records) {
    const auto& p = r.txn_id.path();
    auto& flags = session_flags[r.session_id];
    if (p.size() >= 3 && p[0] == 1 && p[1] == 1) {
      flags.first = true;
    }
    if (p.size() >= 2 && p[0] == 1 && p[1] == 3) {
      flags.second = true;
    }
  }
  std::set<std::string> drop_node;     // Case (a).
  std::set<std::string> drop_subtree;  // Case (b).
  for (const auto& [id, flags] : session_flags) {
    if (flags.first) {
      drop_node.insert(id);
    } else if (flags.second) {
      drop_subtree.insert(id);
    }
  }
  ASSERT_GT(drop_node.size(), 5u);
  ASSERT_GT(drop_subtree.size(), 5u);

  std::vector<LogRecord> damaged;
  damaged.reserve(records.size());
  for (auto& r : records) {
    const auto& p = r.txn_id.path();
    if (drop_node.count(r.session_id) && p.size() == 2 && p[0] == 1 && p[1] == 1) {
      continue;
    }
    if (drop_subtree.count(r.session_id) && p.size() >= 2 && p[0] == 1 && p[1] == 2) {
      continue;
    }
    damaged.push_back(std::move(r));
  }

  auto result = RunPipeline(damaged, 1, 20);
  size_t inferred = 0;
  size_t implied_missing = 0;
  for (const auto& t : result.trees) {
    inferred += t.num_inferred();
    implied_missing += t.ImpliedMissingChildren();
  }
  EXPECT_GE(inferred, drop_node.size());
  EXPECT_GT(implied_missing, 0u);
}

TEST(Integration, AnalyticsComposeOnTreeStream) {
  // sessionize -> trees -> {signature top-k, service-pair top-k} as in §4.3,
  // validated against brute force over the collected trees.
  const auto records = Materialize(TestGen());
  std::map<Epoch, std::vector<LogRecord>> by_epoch;
  for (const auto& r : records) {
    by_epoch[static_cast<Epoch>(r.time / kNanosPerSecond)].push_back(r);
  }

  auto tree_collector = std::make_shared<ConcurrentCollector<TraceTree>>();
  auto sig_results =
      std::make_shared<ConcurrentCollector<TopKResult<std::string>>>();

  Computation::Options options;
  options.workers = 2;
  Computation::Run(options, [&](Scope& scope) {
    auto [input, stream] = scope.NewInput<LogRecord>("logs");
    SessionizeOptions sess_options;
    sess_options.inactivity_epochs = 3;
    auto [sessions, metrics] = Sessionize(scope, stream, sess_options);
    auto trees = ConstructTraceTrees(scope, sessions);
    auto observed = scope.Inspect<TraceTree>(
        trees, "observe", [tree_collector](Epoch, const TraceTree& t) {
          tree_collector->Add(t);
        });
    auto sigs = scope.Map<TraceTree, std::string>(
        observed, "signature", [](TraceTree t) { return t.SignatureKey(); });
    auto topk = TopKPerEpoch<std::string, std::string>(
        scope, sigs, 5, [](const std::string& s) { return s; },
        [](const std::string& s) { return SipHash24(s); }, "sig_topk");
    CollectInto<TopKResult<std::string>>(scope, topk, sig_results, "collect_topk");

    auto in = std::make_shared<InputSession<LogRecord>>(input);
    if (scope.worker_index() == 0) {
      auto it = std::make_shared<std::map<Epoch, std::vector<LogRecord>>::iterator>(
          by_epoch.begin());
      scope.AddDriver([in, it, &by_epoch]() mutable -> DriverStatus {
        if (*it == by_epoch.end()) {
          in->Close();
          return DriverStatus::kFinished;
        }
        if ((*it)->first > in->current_epoch()) {
          in->AdvanceTo((*it)->first);
        }
        in->GiveBatch(std::move((*it)->second));
        ++*it;
        return DriverStatus::kWorked;
      });
    } else {
      scope.AddDriver([in]() -> DriverStatus {
        in->Close();
        return DriverStatus::kFinished;
      });
    }
  });

  // Brute force per emission epoch. Trees are emitted at their session's
  // close epoch; reconstruct that mapping from the collected trees' times is
  // complex, so validate the aggregate: summed top-1 counts must not exceed
  // total trees, and every reported signature must exist among the trees.
  std::set<std::string> known_signatures;
  for (const auto& t : tree_collector->items()) {
    known_signatures.insert(t.SignatureKey());
  }
  ASSERT_FALSE(sig_results->items().empty());
  uint64_t reported = 0;
  for (const auto& r : sig_results->items()) {
    ASSERT_FALSE(r.entries.empty());
    for (const auto& [sig, count] : r.entries) {
      EXPECT_TRUE(known_signatures.count(sig)) << sig;
      reported += count;
    }
  }
  EXPECT_LE(reported, tree_collector->items().size());
  EXPECT_GT(reported, 0u);
}

}  // namespace
}  // namespace ts
