// Tests for service dependency extraction.
#include <gtest/gtest.h>

#include "src/analytics/dependency_graph.h"

namespace ts {
namespace {

LogRecord Rec(const char* txn, EventTime t, uint32_t service) {
  LogRecord r;
  r.time = t;
  r.session_id = "S";
  r.txn_id = *TxnId::Parse(txn);
  r.service = service;
  return r;
}

TraceTree Build(std::vector<LogRecord> records) {
  Session s;
  s.id = "S";
  s.records = std::move(records);
  return TraceTree::FromSession(s)[0];
}

TEST(DependencyGraph, EdgesCountsAndLatency) {
  DependencyGraph graph;
  // svc1 -> svc2 (span [10,30] = 20ms... times in ns; use ms-scale ns).
  graph.AddTree(Build({
      Rec("1", 0, 1), Rec("1", 100'000'000, 1),
      Rec("1-1", 10'000'000, 2), Rec("1-1", 30'000'000, 2),
  }));
  graph.AddTree(Build({
      Rec("1", 0, 1), Rec("1-1", 5'000'000, 2), Rec("1-1", 45'000'000, 2),
  }));
  EXPECT_EQ(graph.num_edges(), 1u);
  EXPECT_EQ(graph.total_calls(), 2u);
  auto callees = graph.Callees(1);
  ASSERT_EQ(callees.size(), 1u);
  EXPECT_EQ(callees[0].first, 2u);
  EXPECT_EQ(callees[0].second->calls, 2u);
  EXPECT_NEAR(callees[0].second->child_latency_ms.mean(), 30.0, 1e-9);
  EXPECT_EQ(graph.Callers(2), (std::vector<uint32_t>{1}));
}

TEST(DependencyGraph, SelfCallsAndInferredNodesIgnored) {
  DependencyGraph graph;
  graph.AddTree(Build({
      Rec("1", 0, 7), Rec("1-1", 10, 7),  // Self call.
      Rec("1-2-1", 20, 9),                // 1-2 inferred: edge skipped.
  }));
  EXPECT_EQ(graph.num_edges(), 0u);
}

TEST(DependencyGraph, TransitiveClosures) {
  DependencyGraph graph;
  // 1 -> 2 -> 3, 1 -> 4.
  graph.AddTree(Build({
      Rec("1", 0, 1),
      Rec("1-1", 1, 2),
      Rec("1-1-1", 2, 3),
      Rec("1-2", 3, 4),
  }));
  EXPECT_EQ(graph.DependsOn(1), (std::vector<uint32_t>{2, 3, 4}));
  EXPECT_EQ(graph.DependsOn(2), (std::vector<uint32_t>{3}));
  EXPECT_TRUE(graph.DependsOn(3).empty());
  EXPECT_EQ(graph.ImpactedBy(3), (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(graph.ImpactedBy(4), (std::vector<uint32_t>{1}));
}

TEST(DependencyGraph, HeaviestEdgesOrderedDeterministically) {
  DependencyGraph graph;
  for (int i = 0; i < 3; ++i) {
    graph.AddTree(Build({Rec("1", 0, 1), Rec("1-1", 1, 2)}));
  }
  graph.AddTree(Build({Rec("1", 0, 1), Rec("1-1", 1, 3)}));
  graph.AddTree(Build({Rec("1", 0, 2), Rec("1-1", 1, 3)}));
  auto heaviest = graph.HeaviestEdges(2);
  ASSERT_EQ(heaviest.size(), 2u);
  EXPECT_EQ(heaviest[0].first, (std::pair<uint32_t, uint32_t>{1, 2}));
  EXPECT_EQ(heaviest[0].second, 3u);
  // Tie between (1,3) and (2,3): lexicographically smaller edge first.
  EXPECT_EQ(heaviest[1].first, (std::pair<uint32_t, uint32_t>{1, 3}));
}

TEST(DependencyGraph, CyclicServiceRelationshipsTerminate) {
  // A calls B in one request; B calls A in another: closure must terminate
  // and exclude the root itself.
  DependencyGraph graph;
  graph.AddTree(Build({Rec("1", 0, 1), Rec("1-1", 1, 2)}));
  graph.AddTree(Build({Rec("1", 0, 2), Rec("1-1", 1, 1)}));
  EXPECT_EQ(graph.DependsOn(1), (std::vector<uint32_t>{2}));
  EXPECT_EQ(graph.DependsOn(2), (std::vector<uint32_t>{1}));
}

}  // namespace
}  // namespace ts
