// Tests for the baseline engine's task/queue machinery: element routing,
// watermark acks, backpressure, and end-of-stream state release.
#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "src/baseline/engine.h"

namespace ts {
namespace {

// Operator that records what it sees and holds windowless per-key counters.
class RecordingOperator : public KeyedOperator {
 public:
  explicit RecordingOperator(std::atomic<uint64_t>* elements,
                             std::atomic<uint64_t>* watermarks,
                             std::atomic<uint64_t>* finishes)
      : elements_(elements), watermarks_(watermarks), finishes_(finishes) {}

  void ProcessElement(const std::string& key, EventTime t, RowPtr row) override {
    (void)key;
    (void)t;
    (void)row;
    elements_->fetch_add(1);
  }
  void ProcessWatermark(EventTime) override { watermarks_->fetch_add(1); }
  void Finish() override { finishes_->fetch_add(1); }
  size_t state_bytes() const override { return 0; }

 private:
  std::atomic<uint64_t>* elements_;
  std::atomic<uint64_t>* watermarks_;
  std::atomic<uint64_t>* finishes_;
};

TEST(SubtaskPool, DeliversElementsAndWatermarksToAllSubtasks) {
  std::atomic<uint64_t> elements{0}, watermarks{0}, finishes{0};
  SubtaskPool pool(3, 64, [&](size_t) {
    return std::make_unique<RecordingOperator>(&elements, &watermarks, &finishes);
  });
  pool.Start();
  for (int i = 0; i < 30; ++i) {
    StreamElement e;
    e.kind = StreamElement::Kind::kRecord;
    e.key = "k" + std::to_string(i);
    pool.Emit(static_cast<size_t>(i % 3), std::move(e));
  }
  pool.BroadcastWatermark(100);
  pool.AwaitWatermark(100);
  EXPECT_EQ(watermarks.load(), 3u);   // Every subtask saw it.
  EXPECT_EQ(elements.load(), 30u);    // All elements processed before the ack.
  pool.FinishAndJoin();
  EXPECT_EQ(finishes.load(), 3u);
}

TEST(SubtaskPool, AwaitBlocksUntilAllSubtasksAck) {
  std::atomic<uint64_t> elements{0}, watermarks{0}, finishes{0};
  SubtaskPool pool(2, 64, [&](size_t) {
    return std::make_unique<RecordingOperator>(&elements, &watermarks, &finishes);
  });
  pool.Start();
  pool.BroadcastWatermark(5);
  const int64_t acked_at = pool.AwaitWatermark(5);
  EXPECT_GT(acked_at, 0);
  EXPECT_EQ(watermarks.load(), 2u);
  // A later watermark is also awaitable (monotone fully_acked).
  pool.BroadcastWatermark(9);
  pool.AwaitWatermark(9);
  pool.FinishAndJoin();
}

// Slow operator: the bounded queue must block the producer (backpressure),
// never drop.
class SlowOperator : public KeyedOperator {
 public:
  explicit SlowOperator(std::atomic<uint64_t>* processed) : processed_(processed) {}
  void ProcessElement(const std::string&, EventTime, RowPtr) override {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    processed_->fetch_add(1);
  }
  void ProcessWatermark(EventTime) override {}
  void Finish() override {}
  size_t state_bytes() const override { return 0; }

 private:
  std::atomic<uint64_t>* processed_;
};

TEST(SubtaskPool, BoundedQueueBackpressuresWithoutLoss) {
  std::atomic<uint64_t> processed{0};
  SubtaskPool pool(1, /*queue_capacity=*/4, [&](size_t) {
    return std::make_unique<SlowOperator>(&processed);
  });
  pool.Start();
  constexpr int kN = 100;
  for (int i = 0; i < kN; ++i) {
    StreamElement e;
    e.kind = StreamElement::Kind::kRecord;
    pool.Emit(0, std::move(e));  // Blocks when the queue is full.
    EXPECT_LE(pool.TotalQueuedElements(), 4u);
  }
  pool.FinishAndJoin();
  EXPECT_EQ(processed.load(), static_cast<uint64_t>(kN));
}

}  // namespace
}  // namespace ts
