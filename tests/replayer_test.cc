// Tests for the log-pipeline simulator: conservation of records across workers
// and epochs, arrival-time sanity, reordering characteristics, and stream
// termination.
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/log/wire_format.h"
#include "src/replay/replayer.h"

namespace ts {
namespace {

GeneratorConfig SmallGen() {
  GeneratorConfig config;
  config.seed = 77;
  config.duration_ns = 8 * kNanosPerSecond;
  config.target_records_per_sec = 5'000;
  return config;
}

ReplayerConfig SmallReplay(size_t workers) {
  ReplayerConfig config;
  config.num_servers = 6;
  config.num_processes = 64;
  config.num_workers = workers;
  config.as_text = false;
  return config;
}

// Drains a worker's arrival stream completely; returns per-epoch arrivals.
std::map<Epoch, std::vector<Arrival>> DrainWorker(Replayer& replayer, size_t worker) {
  std::map<Epoch, std::vector<Arrival>> out;
  std::vector<Arrival> arrivals;
  for (Epoch e = 0;; ++e) {
    const auto fetch = replayer.ArrivalsFor(worker, e, &arrivals);
    if (fetch == Replayer::Fetch::kEndOfStream) {
      break;
    }
    if (!arrivals.empty()) {
      out[e] = std::move(arrivals);
    }
    if (e >= 10'000u) {
      ADD_FAILURE() << "stream never terminated";
      break;
    }
  }
  return out;
}

TEST(Replayer, ConservesEveryGeneratedRecordExactlyOnce) {
  const GeneratorConfig gen = SmallGen();
  // Reference: count records straight from an identical generator.
  uint64_t expected = 0;
  {
    TraceGenerator direct(gen);
    Epoch e;
    std::vector<LogRecord> r;
    while (direct.NextEpoch(&e, &r)) {
      expected += r.size();
    }
  }

  Replayer replayer(SmallReplay(3), gen);
  uint64_t got = 0;
  for (size_t w = 0; w < 3; ++w) {
    std::map<Epoch, std::vector<Arrival>> stream;
    std::vector<Arrival> arrivals;
    for (Epoch e = 0;; ++e) {
      if (replayer.ArrivalsFor(w, e, &arrivals) == Replayer::Fetch::kEndOfStream) {
        break;
      }
      got += arrivals.size();
    }
  }
  EXPECT_EQ(got, expected);
  EXPECT_EQ(replayer.stats().records, expected);
}

TEST(Replayer, ArrivalsRespectCausalityAndBucketing) {
  Replayer replayer(SmallReplay(2), SmallGen());
  for (size_t w = 0; w < 2; ++w) {
    // Re-create per worker since DrainWorker consumes.
    ;
  }
  auto stream0 = DrainWorker(replayer, 0);
  auto stream1 = DrainWorker(replayer, 1);
  for (const auto* stream : {&stream0, &stream1}) {
    for (const auto& [epoch, arrivals] : *stream) {
      for (size_t i = 0; i < arrivals.size(); ++i) {
        const Arrival& a = arrivals[i];
        // Bucketed correctly and sorted by arrival.
        EXPECT_EQ(static_cast<Epoch>(a.arrival_ns / kNanosPerSecond), epoch);
        if (i > 0) {
          EXPECT_GE(a.arrival_ns, arrivals[i - 1].arrival_ns);
        }
        // A record cannot arrive before it was produced.
        EXPECT_GE(a.arrival_ns, a.record.time);
      }
    }
  }
}

TEST(Replayer, BatchFlushingReordersEventTimes) {
  Replayer replayer(SmallReplay(1), SmallGen());
  auto stream = DrainWorker(replayer, 0);
  uint64_t inversions = 0;
  uint64_t total = 0;
  EventTime prev = -1;
  for (const auto& [epoch, arrivals] : stream) {
    for (const auto& a : arrivals) {
      if (a.record.time < prev) {
        ++inversions;
      }
      prev = a.record.time;
      ++total;
    }
  }
  ASSERT_GT(total, 10'000u);
  // Multiplexing many processes with batched flushing must reorder a
  // substantial fraction of the stream — that is why TS needs the re-order
  // buffer at all.
  EXPECT_GT(inversions, total / 100);
}

TEST(Replayer, TextModeEmitsParseableWireFormat) {
  ReplayerConfig config = SmallReplay(1);
  config.as_text = true;
  GeneratorConfig gen = SmallGen();
  gen.duration_ns = 2 * kNanosPerSecond;
  Replayer replayer(config, gen);
  auto stream = DrainWorker(replayer, 0);
  uint64_t parsed_ok = 0;
  for (const auto& [epoch, arrivals] : stream) {
    for (const auto& a : arrivals) {
      ASSERT_FALSE(a.line.empty());
      auto parsed = ParseWireFormat(a.line);
      ASSERT_TRUE(parsed.has_value()) << a.line;
      ++parsed_ok;
    }
  }
  EXPECT_GT(parsed_ok, 1'000u);
}

TEST(Replayer, ArrivalDelaysAreMostlySmallWithBoundedTail) {
  Replayer replayer(SmallReplay(1), SmallGen());
  auto stream = DrainWorker(replayer, 0);
  (void)stream;
  auto& delays = const_cast<SampleSet&>(replayer.stats().arrival_delays_ms);
  ASSERT_GT(delays.count(), 100u);
  // Median delay around half the mean flush interval (tens of ms), never huge
  // without straggler injection.
  EXPECT_LT(delays.Median(), 200.0);
  EXPECT_LT(delays.Max(), 2'000.0);
}

TEST(Replayer, StragglerInjectionProducesLateArrivals) {
  ReplayerConfig config = SmallReplay(1);
  config.straggler_prob = 0.001;
  config.straggler_max_ns = 30 * kNanosPerSecond;
  Replayer replayer(config, SmallGen());
  auto stream = DrainWorker(replayer, 0);
  (void)stream;
  EXPECT_GT(replayer.stats().stragglers, 0u);
  auto& delays = const_cast<SampleSet&>(replayer.stats().arrival_delays_ms);
  EXPECT_GT(delays.Max(), 1'000.0);  // At least one second-scale delay sampled.
}

TEST(Replayer, WorkerPartitionIsDisjointAndStable) {
  // The same (host, service) always lands on the same worker: per-process
  // streams are never split.
  Replayer replayer(SmallReplay(4), SmallGen());
  std::map<std::pair<uint32_t, uint32_t>, size_t> owner;
  for (size_t w = 0; w < 4; ++w) {
    auto stream = DrainWorker(replayer, w);
    for (const auto& [epoch, arrivals] : stream) {
      for (const auto& a : arrivals) {
        const auto key = std::make_pair(a.record.host, a.record.service);
        auto [it, inserted] = owner.emplace(key, w);
        if (!inserted) {
          EXPECT_EQ(it->second, w) << "host/service stream split across workers";
        }
      }
    }
  }
  EXPECT_GT(owner.size(), 10u);
}

}  // namespace
}  // namespace ts
