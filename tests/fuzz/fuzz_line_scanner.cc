// Fuzz target for the SWAR ingest scan (docs/INGEST.md): arbitrary bytes in,
// byte-for-byte agreement with the scalar reference out. Covers the three
// layers an adversarial writer can reach over the wire:
//
//   FindByte / ScanSeparators   — every reported boundary equals the scalar
//                                 scan's, at every unaligned start offset;
//   ScanRecord + Materialize    — accept/reject and every materialized field
//                                 identical to ParseWireFormat;
//   LineFramer::FeedViews       — identical framed lines / frame errors /
//                                 pending bytes to LineFramer::Feed when the
//                                 input is split at a fuzz-chosen point.
//
// Built two ways (tests/fuzz/CMakeLists.txt):
//   - with Clang + TS_BUILD_FUZZERS=ON: a real libFuzzer binary
//     (-fsanitize=fuzzer), run as a 60s smoke in the CI sanitizer job;
//   - otherwise: a standalone main() that replays tests/fuzz/corpus/ (and
//     any files passed on argv), registered in ctest so every build — gcc
//     included — executes the corpus under the same checks.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/arena.h"
#include "src/log/record_view.h"
#include "src/log/swar_scan.h"
#include "src/log/wire_format.h"
#include "src/net/frame_reader.h"

namespace {

using namespace ts;

void Require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "fuzz_line_scanner: divergence: %s\n", what);
    std::abort();
  }
}

void CheckScanners(std::string_view data) {
  for (const char needle : {'|', '\n', '\0'}) {
    Require(FindByte(data.data(), data.size(), needle) ==
                FindByteScalar(data.data(), data.size(), needle),
            "FindByte != FindByteScalar");
  }
  size_t got[RecordView::kMaxSeps];
  size_t want[RecordView::kMaxSeps];
  for (size_t max_seps = 1; max_seps <= RecordView::kMaxSeps; ++max_seps) {
    const size_t got_n = ScanSeparators(data, '|', got, max_seps);
    const size_t want_n = ScanSeparatorsScalar(data, '|', want, max_seps);
    Require(got_n == want_n, "ScanSeparators count mismatch");
    for (size_t i = 0; i < got_n; ++i) {
      Require(got[i] == want[i], "ScanSeparators offset mismatch");
    }
  }
}

void CheckMaterialize(std::string_view line) {
  const RecordView swar_view = ScanRecord(line);
  const RecordView scalar_view = ScanRecordScalar(line);
  Require(swar_view.sep_count == scalar_view.sep_count,
          "ScanRecord sep_count mismatch");
  for (size_t i = 0; i < swar_view.sep_count; ++i) {
    Require(swar_view.sep[i] == scalar_view.sep[i],
            "ScanRecord sep offset mismatch");
  }

  const std::optional<LogRecord> want = ParseWireFormat(line);
  InternerPair interners;
  LogRecord got;
  const bool ok = MaterializeRecord(swar_view, &interners, &got);
  Require(ok == want.has_value(), "accept/reject divergence");
  if (ok) {
    Require(got.time == want->time, "time mismatch");
    Require(got.session_id == want->session_id, "session mismatch");
    Require(got.txn_id == want->txn_id, "txn mismatch");
    Require(got.service == want->service, "service mismatch");
    Require(got.host == want->host, "host mismatch");
    Require(got.kind == want->kind, "kind mismatch");
    Require(got.payload == want->payload, "payload mismatch");
  }
  LogRecord uncached;
  Require(MaterializeRecord(swar_view, nullptr, &uncached) == ok,
          "cached/uncached divergence");
}

void CheckFramer(std::string_view data, size_t split) {
  LineFramer::Options options;
  options.max_line_bytes = 128;  // Small cap: fuzz hits the oversize path.
  LineFramer copying(options);
  LineFramer viewing(options);
  std::vector<std::string> copied;
  std::vector<std::string_view> viewed;
  Arena arena;
  const std::string_view first = arena.Copy(data.substr(0, split));
  const std::string_view second = arena.Copy(data.substr(split));
  copying.Feed(data.substr(0, split), &copied);
  copying.Feed(data.substr(split), &copied);
  viewing.FeedViews(first, &arena, &viewed);
  viewing.FeedViews(second, &arena, &viewed);
  Require(viewed.size() == copied.size(), "framer line count mismatch");
  for (size_t i = 0; i < copied.size(); ++i) {
    Require(viewed[i] == copied[i], "framer line bytes mismatch");
  }
  Require(viewing.frame_errors() == copying.frame_errors(),
          "frame_errors mismatch");
  Require(viewing.pending_bytes() == copying.pending_bytes(),
          "pending_bytes mismatch");
}

void RunOneInput(const uint8_t* data, size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);

  // Unaligned starts: the same bytes shifted to every offset within a word
  // must scan identically (cheap on small inputs, capped on large).
  CheckScanners(input);
  if (size <= 512) {
    std::vector<char> page(size + 8);
    for (size_t offset = 1; offset < 8; ++offset) {
      std::memcpy(page.data() + offset, data, size);
      CheckScanners(std::string_view(page.data() + offset, size));
    }
  }

  // Treat the input as one line (the framer strips '\n' before parse, so
  // embedded newlines just become part of a never-valid line — still a legal
  // parity probe), and as a byte stream split where the first input byte
  // says.
  CheckMaterialize(input);
  const size_t split = size == 0 ? 0 : data[0] % (size + 1);
  CheckFramer(input, split);
}

}  // namespace

#ifdef TS_FUZZ_STANDALONE
// Corpus-replay driver for toolchains without libFuzzer: each argv is a
// corpus file; no argv means read stdin.
#include <cstdio>

int main(int argc, char** argv) {
  auto run_file = [](std::FILE* f) {
    std::string bytes;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      bytes.append(buf, n);
    }
    RunOneInput(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
  };
  if (argc <= 1) {
    run_file(stdin);
    return 0;
  }
  for (int i = 1; i < argc; ++i) {
    std::FILE* f = std::fopen(argv[i], "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 1;
    }
    run_file(f);
    std::fclose(f);
    std::printf("ok: %s\n", argv[i]);
  }
  return 0;
}
#else
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  RunOneInput(data, size);
  return 0;
}
#endif
