// Tests for the analytics operator helpers: duration histograms, session
// statistics, and service invocation counts wired as dataflow stages.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/analytics/session_stats.h"
#include "src/core/sessionize.h"
#include "src/core/tree_ops.h"
#include "src/timely/timely.h"

namespace ts {
namespace {

LogRecord Rec(const std::string& session, EventTime t, const char* txn,
              uint32_t service = 1) {
  LogRecord r;
  r.time = t;
  r.session_id = session;
  r.txn_id = *TxnId::Parse(txn);
  r.service = service;
  return r;
}

struct Handles {
  std::shared_ptr<ConcurrentLogHistogram> durations;
  std::shared_ptr<ConcurrentSamples> session_durations;
  std::shared_ptr<ConcurrentSamples> invocations;
};

Handles RunAnalytics(const std::vector<LogRecord>& records) {
  Handles handles;
  Computation::Options options;
  options.workers = 1;
  Computation::Run(options, [&](Scope& scope) {
    auto [input, stream] = scope.NewInput<LogRecord>("logs");
    SessionizeOptions sess;
    sess.inactivity_epochs = 2;
    auto [sessions, metrics] = Sessionize(scope, stream, sess);
    handles.session_durations = SessionDurations(scope, sessions);
    auto trees = ConstructTraceTrees(scope, sessions);
    handles.durations = TreeDurationHistogram(scope, trees);
    handles.invocations = ServiceInvocationCounts(scope, trees);

    auto in = std::make_shared<InputSession<LogRecord>>(input);
    auto cursor = std::make_shared<size_t>(0);
    scope.AddDriver([in, cursor, &records]() -> DriverStatus {
      if (*cursor == records.size()) {
        in->Close();
        return DriverStatus::kFinished;
      }
      const Epoch e = static_cast<Epoch>(records[*cursor].time / kNanosPerSecond);
      if (e > in->current_epoch()) {
        in->AdvanceTo(e);
      }
      while (*cursor < records.size() &&
             static_cast<Epoch>(records[*cursor].time / kNanosPerSecond) == e) {
        in->Give(records[(*cursor)++]);
      }
      return DriverStatus::kWorked;
    });
  });
  return handles;
}

TEST(Analytics, TreeDurationHistogramLogDiscretizesMillis) {
  // Session A: one tree spanning 8 ms (bucket log2(8)=3); session B: one
  // single-record tree (filtered: < 2 records).
  std::vector<LogRecord> records = {
      Rec("A", 0, "1"),
      Rec("A", 8 * kNanosPerMilli, "1-1"),
      Rec("B", kNanosPerMilli, "1"),
  };
  auto handles = RunAnalytics(records);
  const auto& hist = handles.durations->histogram();
  EXPECT_EQ(hist.total(), 1u);
  EXPECT_EQ(hist.buckets().at(3), 1u);
}

TEST(Analytics, SessionDurationsCollectTimespans) {
  std::vector<LogRecord> records = {
      Rec("A", 0, "1"),
      Rec("A", 500 * kNanosPerMilli, "1"),
      Rec("B", 0, "1"),
  };
  auto handles = RunAnalytics(records);
  auto& samples = handles.session_durations->samples();
  ASSERT_EQ(samples.count(), 2u);
  EXPECT_DOUBLE_EQ(samples.Min(), 0.0);    // B: single record.
  EXPECT_DOUBLE_EQ(samples.Max(), 500.0);  // A: 500 ms.
}

TEST(Analytics, ServiceInvocationCountsDistinctServicesPerTree) {
  std::vector<LogRecord> records = {
      Rec("A", 0, "1", 10),
      Rec("A", 1000, "1-1", 20),
      Rec("A", 2000, "1-2", 20),   // Same service twice: still 2 distinct.
      Rec("B", 0, "1", 30),
  };
  auto handles = RunAnalytics(records);
  auto& samples = handles.invocations->samples();
  ASSERT_EQ(samples.count(), 2u);
  EXPECT_DOUBLE_EQ(samples.Min(), 1.0);
  EXPECT_DOUBLE_EQ(samples.Max(), 2.0);
}

}  // namespace
}  // namespace ts
