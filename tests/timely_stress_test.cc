// Stress and property tests for the dataflow engine: deep pipelines, fan-out,
// concat, many epochs, random feeding patterns across worker counts, and a
// progress-tracking safety property under randomized delta application orders.
#include <atomic>
#include <map>
#include <numeric>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/timely/timely.h"

namespace ts {
namespace {

// A deep pipeline of maps with a mid-stream exchange must preserve the sum of
// all inputs across epochs and workers, with every epoch completing in order.
class EngineStress
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(EngineStress, DeepPipelineConservesSum) {
  const auto [workers, epochs, per_epoch] = GetParam();
  std::atomic<int64_t> sum{0};
  std::atomic<uint64_t> count{0};

  Computation::Options options;
  options.workers = workers;
  Computation::Run(options, [&, epochs = epochs, per_epoch = per_epoch](Scope& scope) {
    auto [input, s0] = scope.NewInput<int64_t>("ints");
    auto s1 = scope.Map<int64_t, int64_t>(s0, "add1", [](int64_t v) { return v + 1; });
    auto s2 = scope.Unary<int64_t, int64_t>(
        s1, Partition<int64_t>::ByKey([](const int64_t& v) {
          return static_cast<uint64_t>(v) * 0x9E3779B97F4A7C15ULL;
        }),
        "shuffle",
        [](Epoch e, std::vector<int64_t>& data, OutputSession<int64_t>& out,
           NotificatorHandle&) { out.GiveVec(e, std::move(data)); },
        [](Epoch, OutputSession<int64_t>&, NotificatorHandle&) {});
    auto s3 = scope.Map<int64_t, int64_t>(s2, "sub1", [](int64_t v) { return v - 1; });
    auto s4 = scope.Filter<int64_t>(s3, "all", [](const int64_t&) { return true; });
    scope.Sink<int64_t>(s4, "sum", [&](Epoch, std::vector<int64_t>& data) {
      for (int64_t v : data) {
        sum.fetch_add(v, std::memory_order_relaxed);
        count.fetch_add(1, std::memory_order_relaxed);
      }
    });

    auto in = std::make_shared<InputSession<int64_t>>(input);
    const size_t w = scope.worker_index();
    auto rng = std::make_shared<Rng>(1000 + w);
    auto fed = std::make_shared<Epoch>(0);
    scope.AddDriver([in, rng, fed, w, epochs, per_epoch]() -> DriverStatus {
      if (*fed == epochs) {
        in->Close();
        return DriverStatus::kFinished;
      }
      // Random per-step batch sizes; occasionally skip epochs entirely.
      const bool skip = rng->NextBool(0.2);
      if (!skip) {
        for (size_t i = 0; i < per_epoch; ++i) {
          in->Give(static_cast<int64_t>(rng->NextBelow(1000)));
        }
      }
      *fed += 1 + rng->NextBelow(2);  // Sometimes jump epochs.
      if (*fed > epochs) {
        *fed = epochs;
      }
      in->AdvanceTo(*fed);
      return DriverStatus::kWorked;
    });
  });

  // Expected sum recomputed with identical per-worker RNG streams.
  int64_t expected_sum = 0;
  uint64_t expected_count = 0;
  for (size_t w = 0; w < workers; ++w) {
    Rng rng(1000 + w);
    Epoch fed = 0;
    while (fed != epochs) {
      const bool skip = rng.NextBool(0.2);
      if (!skip) {
        for (size_t i = 0; i < per_epoch; ++i) {
          expected_sum += static_cast<int64_t>(rng.NextBelow(1000));
          ++expected_count;
        }
      }
      fed += 1 + rng.NextBelow(2);
      if (fed > epochs) {
        fed = epochs;
      }
    }
  }
  EXPECT_EQ(sum.load(), expected_sum);
  EXPECT_EQ(count.load(), expected_count);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EngineStress,
    ::testing::Values(std::make_tuple(1, 20, 100), std::make_tuple(2, 20, 100),
                      std::make_tuple(4, 30, 50), std::make_tuple(3, 50, 20),
                      std::make_tuple(8, 10, 10)));

TEST(EngineStress, ConcatMergesStreamsWithCorrectFrontiers) {
  std::atomic<uint64_t> total{0};
  std::vector<Epoch> completion_order;
  std::mutex mu;

  Computation::Options options;
  options.workers = 2;
  Computation::Run(options, [&](Scope& scope) {
    auto [input, stream] = scope.NewInput<int>("ints");
    auto evens = scope.Filter<int>(stream, "evens",
                                   [](const int& v) { return v % 2 == 0; });
    auto odds = scope.Filter<int>(stream, "odds",
                                  [](const int& v) { return v % 2 == 1; });
    auto merged = scope.Concat<int>({evens, odds}, "merge");
    auto sink = scope.Unary<int, Unit>(
        merged, Partition<int>::Pipeline(), "count",
        [&total](Epoch e, std::vector<int>& data, OutputSession<Unit>& out,
                 NotificatorHandle& n) {
          total.fetch_add(data.size());
          n.NotifyAt(e);
          data.clear();
          (void)out;
        },
        [&](Epoch e, OutputSession<Unit>&, NotificatorHandle&) {
          std::lock_guard<std::mutex> lock(mu);
          completion_order.push_back(e);
        });
    (void)sink;

    auto in = std::make_shared<InputSession<int>>(input);
    auto fed = std::make_shared<Epoch>(0);
    scope.AddDriver([in, fed]() -> DriverStatus {
      if (*fed == 5) {
        in->Close();
        return DriverStatus::kFinished;
      }
      for (int v = 0; v < 10; ++v) {
        in->Give(v);
      }
      in->AdvanceTo(++*fed);
      return DriverStatus::kWorked;
    });
  });

  EXPECT_EQ(total.load(), 2u * 5u * 10u);
  // Each worker's notifications arrive in epoch order.
  std::map<Epoch, int> seen;
  for (Epoch e : completion_order) {
    ++seen[e];
  }
  for (Epoch e = 0; e < 5; ++e) {
    EXPECT_EQ(seen[e], 2) << "each worker notified once for epoch " << e;
  }
}

// Safety property: applying the same set of progress batches in any
// sender-FIFO-preserving interleaving never lets a frontier advance beyond
// what the fully-applied state allows (no premature notification).
TEST(ProgressProperty, FrontierNeverOvertakesUnderReordering) {
  Topology topo;
  const int input = topo.AddNode("input", true);
  const int mid = topo.AddNode("mid", false);
  const int sink = topo.AddNode("sink", false);
  const int e01 = topo.AddEdge(input, mid, true);
  const int e12 = topo.AddEdge(mid, sink, false);
  topo.Finalize();

  // Two "workers" produce batches; ground truth applies all in order.
  // Batches simulate: input sends at epochs 0..4 then closes; mid consumes
  // and forwards; sink consumes.
  std::vector<std::vector<ProgressBatch>> per_sender(2);
  for (int w = 0; w < 2; ++w) {
    Epoch cap = 0;
    for (Epoch e = 0; e < 5; ++e) {
      ProgressBatch b;
      b.Add(topo.edges()[e01].msg_loc, e, +1);  // Send.
      b.Add(topo.nodes()[input].cap_loc, cap, -1);
      b.Add(topo.nodes()[input].cap_loc, e + 1, +1);
      cap = e + 1;
      per_sender[w].push_back(b);
      ProgressBatch c;  // mid consumes + forwards.
      c.Add(topo.edges()[e01].msg_loc, e, -1);
      c.Add(topo.edges()[e12].msg_loc, e, +1);
      per_sender[w].push_back(c);
      ProgressBatch d;  // Sink consumes.
      d.Add(topo.edges()[e12].msg_loc, e, -1);
      per_sender[w].push_back(d);
    }
    ProgressBatch close;
    close.Add(topo.nodes()[input].cap_loc, cap, -1);
    per_sender[w].push_back(close);
  }

  for (uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    ProgressTracker tracker(&topo);
    tracker.InitializeCapability(topo.nodes()[input].cap_loc, 2);
    // Reference tracker with everything applied.
    ProgressTracker full(&topo);
    full.InitializeCapability(topo.nodes()[input].cap_loc, 2);
    for (const auto& sender : per_sender) {
      for (const auto& b : sender) {
        full.Apply(b);
      }
    }
    ASSERT_TRUE(full.AllZero());

    // Random FIFO-preserving interleaving; after each application the partial
    // view's frontier must be <= the information-theoretic best (which here,
    // mid-stream, is just: never report Done before all batches applied, and
    // never pass an epoch whose consumption we haven't seen while we HAVE
    // seen its send... the simplest strong check: frontier after k batches is
    // never beyond the frontier computed from exactly those batches applied
    // in order — which is what the tracker does; so assert monotonicity and
    // no-done-before-end).
    size_t idx[2] = {0, 0};
    size_t applied = 0;
    const size_t total = per_sender[0].size() + per_sender[1].size();
    Frontier last = Frontier::At(0);
    while (applied < total) {
      const int w = (idx[0] < per_sender[0].size() &&
                     (idx[1] >= per_sender[1].size() || rng.NextBool(0.5)))
                        ? 0
                        : 1;
      tracker.Apply(per_sender[w][idx[w]++]);
      ++applied;
      const Frontier f = tracker.EdgeFrontier(e12);
      if (applied < total) {
        // Frontier may advance but must never report Done while work remains
        // from the ground-truth perspective of unapplied decrements... it CAN
        // be Done only if every applied count nets to zero AND remaining
        // batches also net to zero per location -- which cannot happen before
        // the final close batch of both senders.
        const bool both_closed = idx[0] == per_sender[0].size() &&
                                 idx[1] == per_sender[1].size();
        if (!both_closed) {
          EXPECT_FALSE(f.done()) << "seed " << seed << " applied " << applied;
        }
      }
      // Monotonicity: frontiers never regress.
      if (!last.done() && !f.done()) {
        EXPECT_GE(f.min(), last.min());
      }
      EXPECT_FALSE(last.done() && !f.done());
      last = f;
    }
    EXPECT_TRUE(tracker.AllZero());
    EXPECT_TRUE(tracker.EdgeFrontier(e12).done());
  }
}

}  // namespace
}  // namespace ts
