// Tests for the Flink-like baseline engine: merging session windows, watermark
// semantics, backpressure, and semantic agreement with the offline ground
// truth on a generated trace.
#include <map>
#include <mutex>
#include <vector>

#include <gtest/gtest.h>

#include "src/baseline/session_window_job.h"
#include "src/baseline/window.h"
#include "src/offline/offline_sessionizer.h"
#include "src/workload/generator.h"

namespace ts {
namespace {

TEST(MergingWindowSet, SingleElementWindow) {
  MergingWindowSet set;
  int64_t delta = 0;
  const size_t idx = set.AddElement(100, 50, std::make_shared<Row>(), &delta);
  ASSERT_EQ(set.windows().size(), 1u);
  EXPECT_EQ(set.window(idx).window.start, 100);
  EXPECT_EQ(set.window(idx).window.end, 150);
  EXPECT_GT(delta, 0);
}

TEST(MergingWindowSet, OverlappingWindowsMerge) {
  MergingWindowSet set;
  set.AddElement(100, 50, std::make_shared<Row>(), nullptr);
  set.AddElement(130, 50, std::make_shared<Row>(), nullptr);  // Overlaps.
  ASSERT_EQ(set.windows().size(), 1u);
  EXPECT_EQ(set.windows()[0].window.start, 100);
  EXPECT_EQ(set.windows()[0].window.end, 180);
  EXPECT_EQ(set.windows()[0].elements.size(), 2u);
}

TEST(MergingWindowSet, DisjointWindowsStaySeparate) {
  MergingWindowSet set;
  set.AddElement(100, 50, std::make_shared<Row>(), nullptr);
  set.AddElement(500, 50, std::make_shared<Row>(), nullptr);
  EXPECT_EQ(set.windows().size(), 2u);
}

TEST(MergingWindowSet, LateElementBridgesTwoWindows) {
  MergingWindowSet set;
  set.AddElement(100, 50, std::make_shared<Row>(), nullptr);   // [100,150)
  set.AddElement(200, 50, std::make_shared<Row>(), nullptr);   // [200,250)
  set.AddElement(140, 80, std::make_shared<Row>(), nullptr);   // [140,220): bridges.
  ASSERT_EQ(set.windows().size(), 1u);
  EXPECT_EQ(set.windows()[0].window.start, 100);
  EXPECT_EQ(set.windows()[0].window.end, 250);
  EXPECT_EQ(set.windows()[0].elements.size(), 3u);
}

TEST(MergingWindowSet, RipeWindowsAgainstWatermark) {
  MergingWindowSet set;
  set.AddElement(100, 50, std::make_shared<Row>(), nullptr);  // End 150.
  set.AddElement(500, 50, std::make_shared<Row>(), nullptr);  // End 550.
  EXPECT_TRUE(set.RipeWindows(149).empty());
  auto ripe = set.RipeWindows(150);  // End <= watermark fires.
  ASSERT_EQ(ripe.size(), 1u);
  EXPECT_EQ(set.window(ripe[0]).window.end, 150);
  EXPECT_EQ(set.RipeWindows(1000).size(), 2u);
}

LogRecord Rec(const std::string& session, EventTime t) {
  LogRecord r;
  r.time = t;
  r.session_id = session;
  r.txn_id = *TxnId::Parse("1");
  r.service = 1;
  return r;
}

TEST(BaselineJob, SessionizesWithInactivityGap) {
  std::mutex mu;
  std::vector<BaselineSessionOutput> outputs;
  BaselineJobConfig config;
  config.parallelism = 2;
  config.session_gap_ns = 5 * kNanosPerSecond;
  BaselineSessionJob job(config, [&](BaselineSessionOutput out) {
    std::lock_guard<std::mutex> lock(mu);
    outputs.push_back(std::move(out));
  });
  job.Start();
  job.FeedRecord(Rec("A", 0));
  job.FeedRecord(Rec("A", 2 * kNanosPerSecond));
  job.FeedRecord(Rec("B", kNanosPerSecond));
  // A long gap then renewed activity on A: two fragments.
  job.FeedRecord(Rec("A", 60 * kNanosPerSecond));
  job.FinishAndJoin();

  ASSERT_EQ(outputs.size(), 3u);
  const auto stats = job.stats();
  EXPECT_EQ(stats.elements, 4u);
  EXPECT_EQ(stats.sessions, 3u);
  size_t a_fragments = 0;
  for (const auto& out : outputs) {
    if (out.key == "A") {
      ++a_fragments;
    }
  }
  EXPECT_EQ(a_fragments, 2u);
}

TEST(BaselineJob, WatermarkFiresOnlyElapsedWindows) {
  std::mutex mu;
  std::vector<BaselineSessionOutput> outputs;
  BaselineJobConfig config;
  config.parallelism = 1;
  config.session_gap_ns = 2 * kNanosPerSecond;
  BaselineSessionJob job(config, [&](BaselineSessionOutput out) {
    std::lock_guard<std::mutex> lock(mu);
    outputs.push_back(std::move(out));
  });
  job.Start();
  job.FeedRecord(Rec("A", 0));
  job.FeedRecord(Rec("B", 8 * kNanosPerSecond));
  job.BroadcastWatermark(5 * kNanosPerSecond);
  job.AwaitWatermark(5 * kNanosPerSecond);
  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(outputs.size(), 1u);  // Only A's window (end=2s) has elapsed.
    EXPECT_EQ(outputs[0].key, "A");
  }
  job.FinishAndJoin();
  EXPECT_EQ(outputs.size(), 2u);
}

TEST(BaselineJob, ParsesTextAndCountsFailures) {
  BaselineJobConfig config;
  config.parallelism = 1;
  BaselineSessionJob job(config, nullptr);
  job.Start();
  job.FeedLine("0|S|1|svc-1|h-1|ANNOT|p");
  job.FeedLine("not a record");
  job.FinishAndJoin();
  EXPECT_EQ(job.stats().elements, 1u);
  EXPECT_EQ(job.stats().parse_failures, 1u);
}

TEST(BaselineJob, StateBytesGrowAndShrink) {
  BaselineJobConfig config;
  config.parallelism = 1;
  config.session_gap_ns = kNanosPerSecond;
  BaselineSessionJob job(config, nullptr);
  job.Start();
  for (int i = 0; i < 100; ++i) {
    job.FeedRecord(Rec("S" + std::to_string(i), 0));
  }
  job.BroadcastWatermark(0);  // Nothing fires; state resident.
  job.AwaitWatermark(0);
  EXPECT_GT(job.PollStateBytes(), 0u);
  job.BroadcastWatermark(10 * kNanosPerSecond);  // Everything fires.
  job.AwaitWatermark(10 * kNanosPerSecond);
  EXPECT_EQ(job.PollStateBytes(), 0u);
  job.FinishAndJoin();
  EXPECT_EQ(job.stats().sessions, 100u);
  EXPECT_GT(job.stats().peak_state_bytes, 0u);
}

// Semantic agreement: on a generated trace, the baseline's (key, fragment
// count, record count) multiset must match the offline sessionizer splitting
// at the same gap.
TEST(BaselineJob, AgreesWithOfflineGroundTruthOnGeneratedTrace) {
  GeneratorConfig gen_config;
  gen_config.seed = 31;
  gen_config.duration_ns = 6 * kNanosPerSecond;
  gen_config.target_records_per_sec = 2'000;
  TraceGenerator gen(gen_config);
  std::vector<LogRecord> all;
  Epoch epoch;
  std::vector<LogRecord> batch;
  while (gen.NextEpoch(&epoch, &batch)) {
    for (auto& r : batch) {
      all.push_back(r);
    }
  }

  const EventTime gap = 3 * kNanosPerSecond;
  std::mutex mu;
  std::map<std::string, std::vector<size_t>> baseline_sessions;
  BaselineJobConfig config;
  config.parallelism = 3;
  config.session_gap_ns = gap;
  BaselineSessionJob job(config, [&](BaselineSessionOutput out) {
    std::lock_guard<std::mutex> lock(mu);
    baseline_sessions[out.key].push_back(out.num_records);
  });
  job.Start();
  for (const auto& r : all) {
    job.FeedRecord(r);
  }
  job.FinishAndJoin();

  // Window semantics: [t, t+gap) windows merge only when the inter-record gap
  // is strictly below `gap`, so the equivalent offline rule splits at >= gap.
  OfflineOptions offline_options;
  offline_options.inactivity_split_ns = gap - 1;
  auto expected = OfflineSessionizer::Sessionize(std::move(all), offline_options);
  std::map<std::string, std::vector<size_t>> expected_sessions;
  for (const auto& s : expected) {
    expected_sessions[s.id].push_back(s.records.size());
  }
  for (auto& [id, sizes] : baseline_sessions) {
    std::sort(sizes.begin(), sizes.end());
  }
  for (auto& [id, sizes] : expected_sessions) {
    std::sort(sizes.begin(), sizes.end());
  }
  EXPECT_EQ(baseline_sessions, expected_sessions);
}

}  // namespace
}  // namespace ts
