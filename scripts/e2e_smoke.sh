#!/usr/bin/env bash
# End-to-end smoke of the three-process serving pipeline on loopback:
#
#   ts_log_server  ->  ts_sessionize --connect --serve  ->  ts_query
#
# Asserts a non-empty STATS and a GET wire round trip against the live
# query server. Usage: scripts/e2e_smoke.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
TOOLS="$BUILD_DIR/tools"
WORK="$(mktemp -d)"
cleanup() {
  kill "$(jobs -p)" >/dev/null 2>&1 || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# 1. Log server on an ephemeral port (printed first, alone on a line).
"$TOOLS/ts_log_server" --port=0 --rate=20000 --seconds=3 --seed=11 \
  --quiet --once >"$WORK/ls.out" 2>"$WORK/ls.err" &
PORT=""
for _ in $(seq 100); do
  PORT="$(head -n1 "$WORK/ls.out" 2>/dev/null || true)"
  [ -n "$PORT" ] && break
  sleep 0.1
done
[ -n "$PORT" ] || { echo "FAIL: log server reported no port"; exit 1; }

# 2. Sessionizer consuming the stream, serving ts_query on an ephemeral port.
# --workers=2 exercises the sharded live path (hash-partitioned LivePipeline).
"$TOOLS/ts_sessionize" --connect=127.0.0.1:"$PORT" --serve=0 \
  --inactivity_s=1 --workers=2 >"$WORK/sess.out" 2>"$WORK/sess.err" &
SESS_PID=$!
QPORT=""
for _ in $(seq 100); do
  QPORT="$(sed -n 's/.*query server listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' \
    "$WORK/sess.err" | head -n1)"
  [ -n "$QPORT" ] && break
  sleep 0.1
done
[ -n "$QPORT" ] || { echo "FAIL: sessionizer reported no query port"; cat "$WORK/sess.err"; exit 1; }

# 3. STATS round trip, non-empty once the stream drains.
COUNT=0
for _ in $(seq 150); do
  COUNT="$("$TOOLS/ts_query" --connect=127.0.0.1:"$QPORT" STATS \
    | awk '$1=="store_sessions"{print $2}')"
  [ -n "$COUNT" ] && [ "$COUNT" -gt 0 ] && break
  sleep 0.2
done
[ -n "$COUNT" ] && [ "$COUNT" -gt 0 ] || {
  echo "FAIL: store stayed empty"; cat "$WORK/sess.err"; exit 1; }

# 4. GET round trip: pick any served session id, fetch it as a wire block.
# Capture to files before grepping: piping ts_query into an early-exiting
# reader (grep -q / awk exit) races SIGPIPE against pipefail.
"$TOOLS/ts_query" --connect=127.0.0.1:"$QPORT" --raw \
  RANGE 0 99999999999999 1 >"$WORK/range.out"
ID="$(awk '/^#SESSION /{print $NF; exit}' "$WORK/range.out")"
[ -n "$ID" ] || { echo "FAIL: RANGE returned no session"; exit 1; }
"$TOOLS/ts_query" --connect=127.0.0.1:"$QPORT" --raw GET "$ID" >"$WORK/get.out"
grep -q '^#SESSION ' "$WORK/get.out" || {
  echo "FAIL: GET $ID returned no block"; cat "$WORK/get.out"; exit 1; }

kill -INT "$SESS_PID" 2>/dev/null || true
wait "$SESS_PID" 2>/dev/null || true
echo "e2e smoke OK: $COUNT sessions served on loopback; GET $ID round-tripped"
