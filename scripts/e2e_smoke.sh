#!/usr/bin/env bash
# End-to-end smoke of the three-process serving pipeline on loopback:
#
#   ts_log_server  ->  ts_sessionize --connect --serve  ->  ts_query
#
# Asserts a non-empty STATS and a GET wire round trip against the live
# query server. With --chaos, the same stream then runs a second time
# through the ts_chaos fault-injecting proxy (seeded kills + stalls) and
# the chaos run must converge to exactly the fault-free ingest and store
# counts — the shell-level version of the fault conformance suite.
#
# With --crash, the stream runs a third time with --checkpoint-dir: the
# sessionizer is kill -9'd mid-stream, restarted against the same directory,
# and must recover from its snapshot and converge to exactly the fault-free
# ingest and store counts — the shell-level version of the CrashRecovery
# conformance suite (see docs/RECOVERY.md).
#
# With --templates, a fourth run streams free-text payloads through
# ts_sessionize --mine-templates and asserts the TEMPLATES verb serves a
# non-empty ranked dictionary (see docs/ARCHITECTURE.md, ts_parse).
#
# With --cold, the same stream runs again through a deliberately tiny hot
# window (--store_mb=1 --cold-dir), so most sessions spill to cold segments,
# and a full-span RANGE plus a GET of the oldest (certainly cold) session
# must be byte-identical to the unbounded fault-free run — the shell-level
# version of the tiered-store serving contract (see docs/STORE.md).
#
# With --diskfault, the tiered + checkpointed pipeline runs once more with a
# deterministic disk-fault plan installed (--disk-fault-plan: ENOSPC windows
# and failed fsyncs against every snapshot and cold-segment write). The
# checkpointer must enter degraded mode and recover, nothing may shed, the
# served bytes must stay identical to the fault-free run, and a restart from
# the surviving snapshots + segments must restore the same state — the
# shell-level version of the DiskFaultConformance suite (docs/FAULT_TESTING.md).
#
# With --loadgen, the open-loop generator replaces the log server:
#
#   ts_loadgen  ->  ts_sessionize --connect --serve --shed-policy=oldest-open
#
# The generator subscribes to the consumer's query port for close latencies,
# and after the drain the STATS gauges must reconcile exactly:
# ingest_records == live_records_emitted + live_open_records +
# live_shed_records, and the wire total (ingest_records + live_shed_lines)
# must cover every scheduled record (see docs/LOADGEN.md).
#
# Usage: scripts/e2e_smoke.sh [build-dir] [--chaos] [--crash] [--templates]
#                             [--loadgen] [--cold] [--diskfault]
#   CHAOS_SEED=n   picks the fault plan for the chaos run (default 7; the
#                  effective plan is echoed to the chaos proxy's stderr).
set -euo pipefail

BUILD_DIR="build"
CHAOS=0
CRASH=0
TEMPLATES=0
LOADGEN=0
COLD=0
DISKFAULT=0
for arg in "$@"; do
  case "$arg" in
    --chaos) CHAOS=1 ;;
    --crash) CRASH=1 ;;
    --templates) TEMPLATES=1 ;;
    --loadgen) LOADGEN=1 ;;
    --cold) COLD=1 ;;
    --diskfault) DISKFAULT=1 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done
TOOLS="$BUILD_DIR/tools"
# Every temp artifact this script creates — tool stdout/stderr captures, port
# files, checkpoint dirs, query dumps — lives under the single $WORK dir, and
# the EXIT trap is armed BEFORE mktemp runs so no early-exit path (set -e
# failures included) can leak it. cleanup() must therefore tolerate an empty
# $WORK: the trap can fire before the directory exists.
WORK=""
cleanup() {
  trap - EXIT
  kill $(jobs -p) >/dev/null 2>&1 || true
  # Belt and braces: no ts_log_server / ts_sessionize / ts_chaos child may
  # outlive the smoke run — a stray one (e.g. after a mid-script failure
  # while a kill -9'd sessionizer's server keeps serving) holds its port and
  # wedges CI until the job timeout. -P $$ scopes the sweep to our children.
  pkill -9 -P $$ -f 'ts_log_server|ts_sessionize|ts_chaos|ts_loadgen' \
    2>/dev/null || true
  if [ -n "$WORK" ]; then
    rm -rf "$WORK"
  fi
}
trap cleanup EXIT
WORK="$(mktemp -d)"

# Both runs must see the identical archive: same seed, rate, and duration.
GEN_ARGS=(--rate=20000 --seconds=3 --seed=11 --quiet)

# Reads the ephemeral port a tool prints first, alone on a line.
wait_port_file() {
  local port=""
  for _ in $(seq 100); do
    port="$(head -n1 "$1" 2>/dev/null || true)"
    [ -n "$port" ] && break
    sleep 0.1
  done
  echo "$port"
}

# stat_gauge <query-port> <gauge> — one STATS gauge value, empty on error.
stat_gauge() {
  "$TOOLS/ts_query" --connect=127.0.0.1:"$1" STATS 2>/dev/null \
    | awk -v g="$2" '$1==g{print $2}'
}

# start_sessionize <upstream-port> <tag> [extra flags...] — sets SESS_PID and
# QPORT.
start_sessionize() {
  local port="$1" tag="$2"
  shift 2
  "$TOOLS/ts_sessionize" --connect=127.0.0.1:"$port" --serve=0 \
    --inactivity_s=1 --workers=2 "$@" >"$WORK/$tag.out" 2>"$WORK/$tag.err" &
  SESS_PID=$!
  QPORT=""
  for _ in $(seq 100); do
    QPORT="$(sed -n 's/.*query server listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' \
      "$WORK/$tag.err" | head -n1)"
    [ -n "$QPORT" ] && break
    sleep 0.1
  done
  [ -n "$QPORT" ] || {
    echo "FAIL: $tag sessionizer reported no query port"
    cat "$WORK/$tag.err"
    exit 1
  }
}

# settle_counts <query-port> — waits for the ingest to drain and the store to
# stop moving (5 consecutive identical polls); sets RECORDS and SESSIONS.
settle_counts() {
  local last="" cur="" stable=0
  RECORDS=""
  SESSIONS=""
  for _ in $(seq 300); do
    RECORDS="$(stat_gauge "$1" ingest_records || true)"
    SESSIONS="$(stat_gauge "$1" store_sessions || true)"
    cur="$RECORDS/$SESSIONS"
    if [ -n "$RECORDS" ] && [ "$RECORDS" -gt 0 ] && [ "$cur" = "$last" ]; then
      stable=$((stable + 1))
      [ "$stable" -ge 5 ] && return 0
    else
      stable=0
    fi
    last="$cur"
    sleep 0.2
  done
  return 1
}

# ---- Fault-free run ---------------------------------------------------------

# 1. Log server on an ephemeral port (printed first, alone on a line).
"$TOOLS/ts_log_server" --port=0 "${GEN_ARGS[@]}" --once \
  >"$WORK/ls.out" 2>"$WORK/ls.err" &
PORT="$(wait_port_file "$WORK/ls.out")"
[ -n "$PORT" ] || { echo "FAIL: log server reported no port"; exit 1; }

# 2. Sessionizer consuming the stream, serving ts_query on an ephemeral port.
# --workers=2 exercises the sharded live path (hash-partitioned LivePipeline).
start_sessionize "$PORT" sess

# 3. STATS round trip, non-empty once the stream drains.
COUNT=0
for _ in $(seq 150); do
  COUNT="$(stat_gauge "$QPORT" store_sessions || true)"
  [ -n "$COUNT" ] && [ "$COUNT" -gt 0 ] && break
  sleep 0.2
done
[ -n "$COUNT" ] && [ "$COUNT" -gt 0 ] || {
  echo "FAIL: store stayed empty"; cat "$WORK/sess.err"; exit 1; }

# In chaos/crash mode the fault-free totals are the reference: wait for the
# full drain, not just the first session.
BASE_RECORDS=""
BASE_SESSIONS=""
if [ "$CHAOS" -eq 1 ] || [ "$CRASH" -eq 1 ] || [ "$COLD" -eq 1 ] \
  || [ "$DISKFAULT" -eq 1 ]; then
  settle_counts "$QPORT" || {
    echo "FAIL: fault-free run never settled"; cat "$WORK/sess.err"; exit 1; }
  BASE_RECORDS="$RECORDS"
  BASE_SESSIONS="$SESSIONS"
  COUNT="$BASE_SESSIONS"
fi

# 4. GET round trip: pick any served session id, fetch it as a wire block.
# Capture to files before grepping: piping ts_query into an early-exiting
# reader (grep -q / awk exit) races SIGPIPE against pipefail.
"$TOOLS/ts_query" --connect=127.0.0.1:"$QPORT" --raw \
  RANGE 0 99999999999999 1 >"$WORK/range.out"
ID="$(awk '/^#SESSION /{print $NF; exit}' "$WORK/range.out")"
[ -n "$ID" ] || { echo "FAIL: RANGE returned no session"; exit 1; }
"$TOOLS/ts_query" --connect=127.0.0.1:"$QPORT" --raw GET "$ID" >"$WORK/get.out"
grep -q '^#SESSION ' "$WORK/get.out" || {
  echo "FAIL: GET $ID returned no block"; cat "$WORK/get.out"; exit 1; }

# In cold/diskfault mode this unbounded run is the byte-identity reference:
# dump the full-span RANGE (oldest-first) while the server is still up. $ID
# above came from `RANGE ... 1`, so it is the oldest session — guaranteed
# cold later.
if [ "$COLD" -eq 1 ] || [ "$DISKFAULT" -eq 1 ]; then
  "$TOOLS/ts_query" --connect=127.0.0.1:"$QPORT" --raw \
    RANGE 0 99999999999999 10000 >"$WORK/range_ref.out"
  grep -q '^#SESSION ' "$WORK/range_ref.out" || {
    echo "FAIL: reference RANGE returned no sessions"; exit 1; }
fi

kill -INT "$SESS_PID" 2>/dev/null || true
wait "$SESS_PID" 2>/dev/null || true
echo "e2e smoke OK: $COUNT sessions served on loopback; GET $ID round-tripped"

[ "$CHAOS" -eq 1 ] || [ "$CRASH" -eq 1 ] || [ "$TEMPLATES" -eq 1 ] \
  || [ "$LOADGEN" -eq 1 ] || [ "$COLD" -eq 1 ] || [ "$DISKFAULT" -eq 1 ] \
  || exit 0

# ---- Cold-tier run: tiny hot window, spill to segments, byte-identity -------

if [ "$COLD" -eq 1 ]; then
  # Fresh log server, same archive (same seed/rate/duration).
  "$TOOLS/ts_log_server" --port=0 "${GEN_ARGS[@]}" --once \
    >"$WORK/lsc.out" 2>"$WORK/lsc.err" &
  CPORT="$(wait_port_file "$WORK/lsc.out")"
  [ -n "$CPORT" ] || { echo "FAIL: cold log server reported no port"; exit 1; }

  # A 1 MiB hot window forces most of the stream through the eviction ->
  # cold-segment path; 1 MiB segments keep several files on disk.
  start_sessionize "$CPORT" cold \
    --store_mb=1 --cold-dir="$WORK/cold" --cold_segment_mb=1

  settle_counts "$QPORT" || {
    echo "FAIL: cold run never settled"; cat "$WORK/cold.err"; exit 1; }
  [ "$RECORDS" = "$BASE_RECORDS" ] || {
    echo "FAIL: cold run ingested $RECORDS records, reference $BASE_RECORDS"
    cat "$WORK/cold.err"; exit 1; }

  COLD_SEGMENTS="$(stat_gauge "$QPORT" store_cold_segments || true)"
  COLD_SESSIONS="$(stat_gauge "$QPORT" store_cold_sessions || true)"
  [ -n "$COLD_SEGMENTS" ] && [ "$COLD_SEGMENTS" -ge 1 ] || {
    echo "FAIL: nothing spilled (store_cold_segments=${COLD_SEGMENTS:-empty})"
    cat "$WORK/cold.err"; exit 1; }

  # The serving contract: a RANGE spanning hot + cold and a GET that must be
  # answered from a cold segment are byte-identical to the unbounded run.
  "$TOOLS/ts_query" --connect=127.0.0.1:"$QPORT" --raw \
    RANGE 0 99999999999999 10000 >"$WORK/range_cold.out"
  cmp -s "$WORK/range_ref.out" "$WORK/range_cold.out" || {
    echo "FAIL: tiered RANGE differs from the unbounded reference"
    diff <(head -5 "$WORK/range_ref.out") <(head -5 "$WORK/range_cold.out") \
      || true
    exit 1; }
  "$TOOLS/ts_query" --connect=127.0.0.1:"$QPORT" --raw GET "$ID" \
    >"$WORK/get_cold.out"
  cmp -s "$WORK/get.out" "$WORK/get_cold.out" || {
    echo "FAIL: cold GET $ID differs from the unbounded reference"
    exit 1; }
  COLD_HITS="$(stat_gauge "$QPORT" store_cold_hits || true)"
  [ -n "$COLD_HITS" ] && [ "$COLD_HITS" -ge 1 ] || {
    echo "FAIL: queries never touched the cold tier (store_cold_hits=0)"
    exit 1; }

  kill -INT "$SESS_PID" 2>/dev/null || true
  wait "$SESS_PID" 2>/dev/null || true
  echo "e2e cold OK: $COLD_SESSIONS sessions across $COLD_SEGMENTS cold" \
       "segment(s); RANGE and cold GET byte-identical to the unbounded run" \
       "($COLD_HITS cold hits)"
fi

# ---- Disk-fault run: ENOSPC/fsync storms on the durability layers, heal,
# ---- restart from the surviving snapshots + segments ------------------------

if [ "$DISKFAULT" -eq 1 ]; then
  # A deterministic plan (grammar: docs/FAULT_TESTING.md). The spill thread
  # coalesces the eviction queue into one large batch while it is in backoff,
  # so a single WriteColdSegment retry sequence can sweep through EVERY window
  # below — the window args must sum to < 8 (the default spill_retry_limit) or
  # the batch would be shed and the served bytes would no longer be comparable.
  # Here the worst case is 6 consecutive spill failures: degrade, retry, heal.
  DF_PLAN="$WORK/disk_plan.txt"
  cat >"$DF_PLAN" <<'EOF'
# ts_fault plan v1
seed 0
profile manual
enospc at=0 arg=2
fsyncfail at=0 arg=1
enospc at=2000000 arg=2
eio at=4000000 arg=1
EOF

  # No --once: the restart leg below reconnects to resume from its snapshot.
  "$TOOLS/ts_log_server" --port=0 "${GEN_ARGS[@]}" \
    >"$WORK/lsd.out" 2>"$WORK/lsd.err" &
  DPORT="$(wait_port_file "$WORK/lsd.out")"
  [ -n "$DPORT" ] || {
    echo "FAIL: diskfault log server reported no port"; exit 1; }

  DF_CKPT="$WORK/df_ckpt"
  DF_COLD="$WORK/df_cold"
  start_sessionize "$DPORT" dfault \
    --store_mb=1 --cold-dir="$DF_COLD" --cold_segment_mb=1 \
    --checkpoint-dir="$DF_CKPT" --ckpt_interval_s=0.05 \
    --disk-fault-plan="$DF_PLAN"

  settle_counts "$QPORT" || {
    echo "FAIL: diskfault run never settled"; cat "$WORK/dfault.err"; exit 1; }
  [ "$RECORDS" = "$BASE_RECORDS" ] || {
    echo "FAIL: diskfault run ingested $RECORDS records, reference" \
         "$BASE_RECORDS"
    cat "$WORK/dfault.err"; exit 1; }

  # The ingest settles while the spill thread may still be deep in its retry
  # backoff (each failed write costs up to 2 s of backoff), so wait for the
  # degraded window to fully heal: the plan fired, the spill queue drained,
  # and segments landed. (Timer snapshots stop with the ingest, so the
  # checkpoint side is proven by the final checkpoint + restart below.)
  DF_HEALED=0
  for _ in $(seq 300); do
    DF_ENOSPC="$(stat_gauge "$QPORT" fault_disk_enospc_failures || true)"
    DF_PENDING="$(stat_gauge "$QPORT" store_cold_pending || true)"
    DF_SEGMENTS="$(stat_gauge "$QPORT" store_cold_segments || true)"
    if [ -n "$DF_ENOSPC" ] && [ "$DF_ENOSPC" -ge 1 ] \
      && [ "$DF_PENDING" = "0" ] \
      && [ -n "$DF_SEGMENTS" ] && [ "$DF_SEGMENTS" -ge 1 ]; then
      DF_HEALED=1
      break
    fi
    sleep 0.1
  done
  [ "$DF_HEALED" -eq 1 ] || {
    echo "FAIL: degraded window never healed:" \
         "enospc=${DF_ENOSPC:-empty} pending=${DF_PENDING:-empty}" \
         "segments=${DF_SEGMENTS:-empty}"
    cat "$WORK/dfault.err"; exit 1; }
  # Finite fault windows must never reach the shed threshold.
  DF_SHED="$(stat_gauge "$QPORT" store_cold_shed_sessions || true)"
  [ "$DF_SHED" = "0" ] || {
    echo "FAIL: finite fault windows shed sessions" \
         "(store_cold_shed_sessions=${DF_SHED:-empty})"
    cat "$WORK/dfault.err"; exit 1; }

  # Storage degradation must never change the served bytes: RANGE over
  # hot + cold and a certainly-cold GET stay identical to the unbounded
  # fault-free reference.
  "$TOOLS/ts_query" --connect=127.0.0.1:"$QPORT" --raw \
    RANGE 0 99999999999999 10000 >"$WORK/range_df.out"
  cmp -s "$WORK/range_ref.out" "$WORK/range_df.out" || {
    echo "FAIL: disk-faulted RANGE differs from the unbounded reference"
    diff <(head -5 "$WORK/range_ref.out") <(head -5 "$WORK/range_df.out") \
      || true
    exit 1; }
  "$TOOLS/ts_query" --connect=127.0.0.1:"$QPORT" --raw GET "$ID" \
    >"$WORK/get_df.out"
  cmp -s "$WORK/get.out" "$WORK/get_df.out" || {
    echo "FAIL: disk-faulted GET $ID differs from the unbounded reference"
    exit 1; }

  # Graceful shutdown writes the final checkpoint (the disk has healed).
  kill -TERM "$SESS_PID" 2>/dev/null || true
  wait "$SESS_PID" 2>/dev/null || true
  grep -q "final checkpoint" "$WORK/dfault.err" || {
    echo "FAIL: diskfault sessionizer wrote no final checkpoint"
    tail -20 "$WORK/dfault.err"; exit 1; }

  # Restart with a healthy disk against the same directories: every file the
  # faulted run published must be fully valid — restore, rediscover the
  # segments, and serve the identical bytes again.
  start_sessionize "$DPORT" dfault2 \
    --store_mb=1 --cold-dir="$DF_COLD" --cold_segment_mb=1 \
    --checkpoint-dir="$DF_CKPT" --ckpt_interval_s=0.05
  DF_RESTORED=0
  for _ in $(seq 100); do
    if grep -q "restored $DF_CKPT/" "$WORK/dfault2.err"; then
      DF_RESTORED=1
      break
    fi
    sleep 0.1
  done
  [ "$DF_RESTORED" -eq 1 ] || {
    echo "FAIL: restart restored no snapshot"; cat "$WORK/dfault2.err"; exit 1; }
  # In tiered mode store_sessions is the hot window only — converge on the
  # ingest total, then prove the content below with the RANGE byte-identity.
  DF_CONVERGED=0
  for _ in $(seq 300); do
    REC="$(stat_gauge "$QPORT" ingest_records || true)"
    if [ "$REC" = "$BASE_RECORDS" ]; then
      DF_CONVERGED=1
      break
    fi
    sleep 0.2
  done
  [ "$DF_CONVERGED" -eq 1 ] || {
    echo "FAIL: restart did not converge: records ${REC:-?}/$BASE_RECORDS"
    cat "$WORK/dfault2.err"; exit 1; }
  "$TOOLS/ts_query" --connect=127.0.0.1:"$QPORT" --raw \
    RANGE 0 99999999999999 10000 >"$WORK/range_df2.out"
  cmp -s "$WORK/range_ref.out" "$WORK/range_df2.out" || {
    echo "FAIL: restored RANGE differs from the unbounded reference"
    diff <(head -5 "$WORK/range_ref.out") <(head -5 "$WORK/range_df2.out") \
      || true
    exit 1; }

  kill -INT "$SESS_PID" 2>/dev/null || true
  wait "$SESS_PID" 2>/dev/null || true
  echo "e2e diskfault OK: $DF_ENOSPC ENOSPC hit(s) absorbed," \
       "$DF_SEGMENTS cold segment(s), nothing shed;" \
       "served bytes identical before and after restart"
fi

[ "$CHAOS" -eq 1 ] || [ "$CRASH" -eq 1 ] || [ "$TEMPLATES" -eq 1 ] \
  || [ "$LOADGEN" -eq 1 ] || exit 0

# ---- Load-generator run: open-loop schedule, shed policy, exact STATS -------

if [ "$LOADGEN" -eq 1 ]; then
  # The generator is the TS1 server; it discovers the consumer's query port
  # through a file we write once the sessionizer has printed it.
  "$TOOLS/ts_loadgen" --rate=40000 --seconds=3 --seed=5 --inactivity_s=1 \
    --subscribe-port-file="$WORK/lg_qport" --subscribe-wait=30 \
    >"$WORK/lg.out" 2>"$WORK/lg.err" &
  LG_PID=$!
  LPORT="$(wait_port_file "$WORK/lg.out")"
  [ -n "$LPORT" ] || {
    echo "FAIL: loadgen reported no port"; cat "$WORK/lg.err"; exit 1; }

  # Tag must differ from the generator's lg.out/lg.err file pair.
  start_sessionize "$LPORT" lgsess --shed-policy=oldest-open
  echo "$QPORT" >"$WORK/lg_qport"

  # The generator paces the schedule, drains, waits for pending closes, and
  # exits nonzero on any transport failure or missed schedule.
  wait "$LG_PID" || {
    echo "FAIL: ts_loadgen exited nonzero"
    cat "$WORK/lg.out" "$WORK/lg.err"; exit 1; }
  settle_counts "$QPORT" || {
    echo "FAIL: loadgen run never settled"; cat "$WORK/lgsess.err"; exit 1; }

  SENT="$(sed -n 's/^loadgen sent=\([0-9]*\).*/\1/p' "$WORK/lg.out" | head -n1)"
  [ -n "$SENT" ] && [ "$SENT" -gt 0 ] || {
    echo "FAIL: loadgen reported no sent count"; cat "$WORK/lg.out"; exit 1; }
  EMITTED="$(stat_gauge "$QPORT" live_records_emitted)"
  OPEN="$(stat_gauge "$QPORT" live_open_records)"
  SHED_REC="$(stat_gauge "$QPORT" live_shed_records)"
  SHED_LINES="$(stat_gauge "$QPORT" live_shed_lines)"
  PFAIL="$(stat_gauge "$QPORT" ingest_parse_failures)"
  WM="$(stat_gauge "$QPORT" sessionize_watermark_ms)"

  [ "$PFAIL" = "0" ] || {
    echo "FAIL: parse failures: ${PFAIL:-empty}"; cat "$WORK/lgsess.err"; exit 1; }
  [ -n "$WM" ] && [ "$WM" -gt 0 ] || {
    echo "FAIL: watermark did not advance: ${WM:-empty}"; exit 1; }

  # Exact accounting, including the shed counters: every parsed record is in
  # the store, still open, or shed — nothing unaccounted.
  TOTAL=$((EMITTED + OPEN + SHED_REC))
  [ "$RECORDS" = "$TOTAL" ] || {
    echo "FAIL: STATS do not reconcile: ingest_records=$RECORDS !=" \
         "emitted=$EMITTED + open=$OPEN + shed_records=$SHED_REC"
    cat "$WORK/lgsess.err"; exit 1; }

  # Cross-process: every scheduled record reached the consumer (the drain
  # tail adds a handful of watermark-advancing records on top).
  WIRE=$((RECORDS + SHED_LINES))
  [ "$WIRE" -ge "$SENT" ] && [ "$WIRE" -le $((SENT + 50)) ] || {
    echo "FAIL: wire total $WIRE outside [$SENT, $((SENT + 50))]"
    cat "$WORK/lg.out"; exit 1; }

  kill -INT "$SESS_PID" 2>/dev/null || true
  wait "$SESS_PID" 2>/dev/null || true
  echo "e2e loadgen OK: $SENT scheduled records reconciled exactly" \
       "(emitted=$EMITTED open=$OPEN shed_records=$SHED_REC" \
       "shed_lines=$SHED_LINES)"
fi

[ "$CHAOS" -eq 1 ] || [ "$CRASH" -eq 1 ] || [ "$TEMPLATES" -eq 1 ] || exit 0

# ---- Template-mining run: free-text payloads, TEMPLATES query ---------------

if [ "$TEMPLATES" -eq 1 ]; then
  # Free-text payload stream: multi-token log lines the miner can structure.
  "$TOOLS/ts_log_server" --port=0 "${GEN_ARGS[@]}" --free_text --once \
    >"$WORK/lst.out" 2>"$WORK/lst.err" &
  TPORT="$(wait_port_file "$WORK/lst.out")"
  [ -n "$TPORT" ] || {
    echo "FAIL: template log server reported no port"; exit 1; }

  start_sessionize "$TPORT" tmpl --mine-templates

  # Wait for the stream to drain into the store before reading the dictionary.
  settle_counts "$QPORT" || {
    echo "FAIL: template run never settled"; cat "$WORK/tmpl.err"; exit 1; }

  # The dictionary gauge and the TEMPLATES verb must both see mined state.
  NTEMPL="$(stat_gauge "$QPORT" live_templates || true)"
  [ -n "$NTEMPL" ] && [ "$NTEMPL" -gt 0 ] || {
    echo "FAIL: live_templates gauge stayed ${NTEMPL:-empty}"
    cat "$WORK/tmpl.err"; exit 1; }

  # ts_query exits nonzero on #ERR (set -e catches it); --raw prints the
  # dictionary as wire-format TMPL lines.
  "$TOOLS/ts_query" --connect=127.0.0.1:"$QPORT" --raw TEMPLATES 5 \
    >"$WORK/tmpl_query.out"
  TMPL_LINES="$(grep -c '^TMPL ' "$WORK/tmpl_query.out" || true)"
  [ -n "$TMPL_LINES" ] && [ "$TMPL_LINES" -ge 1 ] || {
    echo "FAIL: TEMPLATES served no TMPL lines"
    cat "$WORK/tmpl_query.out"; cat "$WORK/tmpl.err"; exit 1; }

  kill -INT "$SESS_PID" 2>/dev/null || true
  wait "$SESS_PID" 2>/dev/null || true
  echo "e2e templates OK: $NTEMPL templates mined from $RECORDS records," \
       "TEMPLATES 5 served $TMPL_LINES entries"
fi

[ "$CHAOS" -eq 1 ] || [ "$CRASH" -eq 1 ] || exit 0

# ---- Crash run: kill -9 mid-stream, restart from the checkpoint dir ---------

if [ "$CRASH" -eq 1 ]; then
  CKPT_DIR="$WORK/ckpt"

  # Fresh log server, same archive. No --once: the killed client's severed
  # connection must not end the server before the restart replays the tail.
  "$TOOLS/ts_log_server" --port=0 "${GEN_ARGS[@]}" \
    >"$WORK/ls3.out" 2>"$WORK/ls3.err" &
  KPORT="$(wait_port_file "$WORK/ls3.out")"
  [ -n "$KPORT" ] || { echo "FAIL: crash log server reported no port"; exit 1; }

  start_sessionize "$KPORT" crash1 \
    --checkpoint-dir="$CKPT_DIR" --ckpt_interval_s=0.05

  # SIGKILL the instant the first snapshot lands — typically mid-stream, and
  # never with any chance for a shutdown checkpoint.
  SNAPPED=0
  for _ in $(seq 200); do
    SNAPS="$(stat_gauge "$QPORT" ckpt_snapshots || true)"
    if [ -n "$SNAPS" ] && [ "$SNAPS" -ge 1 ]; then SNAPPED=1; break; fi
    sleep 0.05
  done
  [ "$SNAPPED" -eq 1 ] || {
    echo "FAIL: no snapshot before kill"; cat "$WORK/crash1.err"; exit 1; }
  KILL_RECORDS="$(stat_gauge "$QPORT" ingest_records || true)"
  kill -9 "$SESS_PID" 2>/dev/null || true
  wait "$SESS_PID" 2>/dev/null || true

  # Restart against the same directory: it must restore a snapshot, resume
  # the stream at its offset, and converge to exactly the fault-free totals.
  start_sessionize "$KPORT" crash2 \
    --checkpoint-dir="$CKPT_DIR" --ckpt_interval_s=0.05
  # The restore banner prints after the query-server banner; give it a beat.
  RESTORED=0
  for _ in $(seq 100); do
    if grep -q "restored $CKPT_DIR/" "$WORK/crash2.err"; then
      RESTORED=1
      break
    fi
    sleep 0.1
  done
  [ "$RESTORED" -eq 1 ] || {
    echo "FAIL: restart restored no snapshot"; cat "$WORK/crash2.err"; exit 1; }

  CONVERGED=0
  for _ in $(seq 300); do
    REC="$(stat_gauge "$QPORT" ingest_records || true)"
    SES="$(stat_gauge "$QPORT" store_sessions || true)"
    if [ "$REC" = "$BASE_RECORDS" ] && [ "$SES" = "$BASE_SESSIONS" ]; then
      CONVERGED=1
      break
    fi
    sleep 0.2
  done
  [ "$CONVERGED" -eq 1 ] || {
    echo "FAIL: crash recovery did not converge:" \
         "records ${REC:-?}/${BASE_RECORDS} sessions ${SES:-?}/${BASE_SESSIONS}"
    echo "-- first incarnation (killed at ${KILL_RECORDS:-?} records):"
    tail -20 "$WORK/crash1.err"
    echo "-- restarted incarnation:"
    tail -20 "$WORK/crash2.err"
    exit 1
  }

  # Graceful shutdown: SIGTERM stops serving after a final checkpoint.
  kill -TERM "$SESS_PID" 2>/dev/null || true
  wait "$SESS_PID" 2>/dev/null || true
  grep -q "final checkpoint" "$WORK/crash2.err" || {
    echo "FAIL: restarted sessionizer wrote no final checkpoint"
    tail -20 "$WORK/crash2.err"
    exit 1
  }

  echo "e2e crash OK: killed at ${KILL_RECORDS:-?}/$BASE_RECORDS records," \
       "recovered and converged to $BASE_SESSIONS sessions /" \
       "$BASE_RECORDS records"
fi

[ "$CHAOS" -eq 1 ] || exit 0

# ---- Chaos run: the same stream through a fault-injecting proxy -------------

CHAOS_SEED="${CHAOS_SEED:-7}"

# Fresh log server, same archive. No --once here: injected kills sever its
# accepted connection and the ingest client reconnects (through the proxy) to
# resume — with --once the first kill would end the server instead.
"$TOOLS/ts_log_server" --port=0 "${GEN_ARGS[@]}" \
  >"$WORK/ls2.out" 2>"$WORK/ls2.err" &
UPORT="$(wait_port_file "$WORK/ls2.out")"
[ -n "$UPORT" ] || { echo "FAIL: chaos log server reported no port"; exit 1; }

# The proxy draws a seeded plan; --stream_kb spreads the fault offsets over
# roughly the archive's wire volume so kills land mid-stream, not just early.
"$TOOLS/ts_chaos" --upstream=127.0.0.1:"$UPORT" --port=0 \
  --seed="$CHAOS_SEED" --profile=mild --stream_kb=3000 \
  >"$WORK/chaos.out" 2>"$WORK/chaos.err" &
CHAOS_PID=$!
CPORT="$(wait_port_file "$WORK/chaos.out")"
[ -n "$CPORT" ] || {
  echo "FAIL: ts_chaos reported no port"; cat "$WORK/chaos.err"; exit 1; }

start_sessionize "$CPORT" chaos_sess

# The conformance assertion: despite kills and stalls, the pipeline must
# converge to exactly the fault-free totals — same records in, same sessions.
CONVERGED=0
for _ in $(seq 300); do
  REC="$(stat_gauge "$QPORT" ingest_records || true)"
  SES="$(stat_gauge "$QPORT" store_sessions || true)"
  if [ "$REC" = "$BASE_RECORDS" ] && [ "$SES" = "$BASE_SESSIONS" ]; then
    CONVERGED=1
    break
  fi
  sleep 0.2
done
[ "$CONVERGED" -eq 1 ] || {
  echo "FAIL: chaos run (seed $CHAOS_SEED) did not converge:" \
       "records ${REC:-?}/${BASE_RECORDS} sessions ${SES:-?}/${BASE_SESSIONS}"
  echo "-- chaos proxy (replay with CHAOS_SEED=$CHAOS_SEED):"
  cat "$WORK/chaos.err"
  echo "-- sessionizer:"
  tail -20 "$WORK/chaos_sess.err"
  exit 1
}

kill -INT "$SESS_PID" 2>/dev/null || true
wait "$SESS_PID" 2>/dev/null || true
kill -INT "$CHAOS_PID" 2>/dev/null || true
wait "$CHAOS_PID" 2>/dev/null || true
FAULTS="$(sed -n 's/^chaos: //p' "$WORK/chaos.err" | head -n1)"
echo "e2e chaos OK: seed $CHAOS_SEED converged to $BASE_SESSIONS sessions /" \
     "$BASE_RECORDS records (${FAULTS:-no stats})"
