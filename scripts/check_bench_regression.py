#!/usr/bin/env python3
"""Gate CI on live-pipeline bench results.

Compares a fresh BENCH_live_scaling.json (written by bench/fig5_live_scaling
--json=...) against the checked-in baseline and fails when:

  * critical-path throughput for any worker count regressed more than
    --tolerance (default 0.30, the ">30% regression" CI contract),
  * the run was not byte-identical across worker counts, or
  * the 4-worker speedup fell below the baseline's min_speedup_4w floor.

Usage: check_bench_regression.py CURRENT.json BASELINE.json [--tolerance=0.30]
"""

import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    tolerance = 0.30
    for a in argv[1:]:
        if a.startswith("--tolerance="):
            tolerance = float(a.split("=", 1)[1])

    current = load(args[0])
    baseline = load(args[1])
    failures = []

    if not current.get("identical", False):
        failures.append(
            "results were NOT byte-identical across worker counts")

    baseline_rows = {row["workers"]: row for row in baseline.get("rows", [])}
    current_rows = {row["workers"]: row for row in current.get("rows", [])}

    print(f"{'workers':>8} {'baseline rec/s':>15} {'current rec/s':>15} "
          f"{'floor':>12} {'status':>8}")
    for workers, base_row in sorted(baseline_rows.items()):
        cur_row = current_rows.get(workers)
        if cur_row is None:
            failures.append(f"workers={workers}: missing from current run")
            continue
        base_tput = float(base_row["records_per_s"])
        cur_tput = float(cur_row["records_per_s"])
        floor = base_tput * (1.0 - tolerance)
        ok = cur_tput >= floor
        print(f"{workers:>8} {base_tput:>15.0f} {cur_tput:>15.0f} "
              f"{floor:>12.0f} {'ok' if ok else 'FAIL':>8}")
        if not ok:
            failures.append(
                f"workers={workers}: {cur_tput:.0f} rec/s is "
                f"{100 * (1 - cur_tput / base_tput):.1f}% below baseline "
                f"{base_tput:.0f} (tolerance {100 * tolerance:.0f}%)")

    min_speedup = baseline.get("min_speedup_4w")
    if min_speedup is not None:
        speedup = float(current.get("speedup_4w", 0.0))
        print(f"speedup_4w: {speedup:.2f}x (floor {min_speedup:.2f}x)")
        if speedup < float(min_speedup):
            failures.append(
                f"4-worker speedup {speedup:.2f}x below floor "
                f"{min_speedup:.2f}x")

    max_ckpt_overhead = baseline.get("max_ckpt_overhead")
    if max_ckpt_overhead is not None:
        if "ckpt_overhead" not in current:
            failures.append("current run emitted no ckpt_overhead")
        else:
            overhead = float(current["ckpt_overhead"])
            print(f"ckpt_overhead: {100 * overhead:.1f}% "
                  f"(cap {100 * float(max_ckpt_overhead):.0f}%)")
            if overhead > float(max_ckpt_overhead):
                failures.append(
                    f"checkpoint overhead {100 * overhead:.1f}% exceeds cap "
                    f"{100 * float(max_ckpt_overhead):.0f}%")

    if failures:
        print("\nBENCH REGRESSION:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nbench within tolerance of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
