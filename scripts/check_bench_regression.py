#!/usr/bin/env python3
"""Gate CI on bench results.

Compares a fresh BENCH_*.json (written by bench/fig5_live_scaling or
bench/template_compression with --json=...) against the checked-in baseline
and fails when:

  * critical-path throughput for any baseline lane regressed more than
    --tolerance (default 0.30, the ">30% regression" CI contract),
  * the run's "identical" verdict is false (live_scaling: results were not
    byte-identical across worker counts; overload_study: accounting did not
    reconcile or the watermark stalled — the current run's "identity_check"
    string, when present, names what the verdict means),
  * any per-lane cap in the baseline is exceeded: a baseline row key
    "max_<metric>" (e.g. max_p99_close_ms) caps the current row's <metric>,
  * the 4-worker speedup fell below the baseline's min_speedup_4w floor,
  * checkpoint overhead exceeded the baseline's max_ckpt_overhead cap,
  * the store compression ratio fell below min_compression_ratio, or
  * the lane sets diverge: a lane present in the baseline but missing from
    the current run always fails; a lane present in the current run but
    missing from the baseline fails with a clear "lane missing from
    baseline" error unless --allow-new-lanes is passed (use it on the CI
    run that introduces a lane, then check in the refreshed baseline).

Lanes are keyed by the "workers" field when rows carry one (live_scaling)
and by the "lane" field otherwise (template_compression, overload_study).

With --markdown=PATH the same comparison is also written as a GitHub-flavored
markdown delta table (one row per lane: baseline vs current rec/s, delta %,
pass/fail), suitable for $GITHUB_STEP_SUMMARY. The perf-gate CI job uses this
with the merge-base's fresh measurement as BASELINE.json, turning the gate
into a head-vs-merge-base comparison on identical hardware.

Usage: check_bench_regression.py CURRENT.json BASELINE.json
           [--tolerance=0.30] [--allow-new-lanes] [--markdown=PATH]
       check_bench_regression.py --self-test
"""

import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def lane_key(row):
    """Stable lane identity for a result row."""
    if "workers" in row:
        return f"workers={row['workers']}"
    if "lane" in row:
        return f"lane={row['lane']}"
    return None


def index_rows(doc, path, failures):
    rows = {}
    for row in doc.get("rows", []):
        key = lane_key(row)
        if key is None:
            failures.append(
                f"{path}: row {row!r} has neither 'workers' nor 'lane' — "
                "cannot identify the lane")
            continue
        if key in rows:
            failures.append(f"{path}: duplicate lane {key}")
            continue
        rows[key] = row
    return rows


def check_row_caps(key, base_row, cur_row, failures):
    """Gate current metrics against per-lane "max_<metric>" caps (latency
    ceilings in the overload_study baseline: max_p99_close_ms and friends)."""
    for cap_key in sorted(base_row):
        if not cap_key.startswith("max_"):
            continue
        metric = cap_key[len("max_"):]
        cap = float(base_row[cap_key])
        if metric not in cur_row:
            failures.append(
                f"{key}: baseline caps {metric} but the current run emitted "
                "none")
            continue
        value = float(cur_row[metric])
        ok = value <= cap
        print(f"{key:>14} {metric}: {value:.2f} (cap {cap:.2f}) "
              f"{'ok' if ok else 'FAIL'}")
        if not ok:
            failures.append(
                f"{key}: {metric} {value:.2f} exceeds cap {cap:.2f}")


def main(argv):
    if "--self-test" in argv[1:]:
        return self_test()
    args = [a for a in argv[1:] if not a.startswith("--")]
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    tolerance = 0.30
    allow_new_lanes = False
    markdown_path = None
    for a in argv[1:]:
        if a.startswith("--tolerance="):
            tolerance = float(a.split("=", 1)[1])
        elif a == "--allow-new-lanes":
            allow_new_lanes = True
        elif a.startswith("--markdown="):
            markdown_path = a.split("=", 1)[1]

    current = load(args[0])
    baseline = load(args[1])
    failures = []
    md_rows = []  # (lane, base rec/s or None, current rec/s or None, status)

    if not current.get("identical", False):
        failures.append(current.get(
            "identity_check",
            "results were NOT byte-identical across worker counts"))

    baseline_rows = index_rows(baseline, args[1], failures)
    current_rows = index_rows(current, args[0], failures)

    print(f"{'lane':>14} {'baseline rec/s':>15} {'current rec/s':>15} "
          f"{'floor':>12} {'status':>8}")
    for key, base_row in sorted(baseline_rows.items()):
        cur_row = current_rows.get(key)
        if cur_row is None:
            failures.append(f"{key}: missing from current run")
            continue
        check_row_caps(key, base_row, cur_row, failures)
        base_tput = base_row.get("records_per_s")
        cur_tput = cur_row.get("records_per_s")
        if base_tput is None:
            print(f"{key:>14} {'(no throughput gate)':>44}")
            continue
        if cur_tput is None:
            failures.append(
                f"{key}: baseline gates records_per_s but the current run "
                "emitted none")
            md_rows.append((key, float(base_tput), None, "missing"))
            continue
        base_tput = float(base_tput)
        cur_tput = float(cur_tput)
        floor = base_tput * (1.0 - tolerance)
        ok = cur_tput >= floor
        md_rows.append((key, base_tput, cur_tput, "ok" if ok else "FAIL"))
        print(f"{key:>14} {base_tput:>15.0f} {cur_tput:>15.0f} "
              f"{floor:>12.0f} {'ok' if ok else 'FAIL':>8}")
        if not ok:
            failures.append(
                f"{key}: {cur_tput:.0f} rec/s is "
                f"{100 * (1 - cur_tput / base_tput):.1f}% below baseline "
                f"{base_tput:.0f} (tolerance {100 * tolerance:.0f}%)")

    new_lanes = sorted(set(current_rows) - set(baseline_rows))
    if new_lanes:
        if allow_new_lanes:
            print(f"new lanes not in baseline (allowed): {', '.join(new_lanes)}")
        else:
            for key in new_lanes:
                failures.append(
                    f"{key}: lane missing from baseline {args[1]} — refresh "
                    "the baseline, or pass --allow-new-lanes to accept it "
                    "for this run")

    min_speedup = baseline.get("min_speedup_4w")
    if min_speedup is not None:
        speedup = float(current.get("speedup_4w", 0.0))
        print(f"speedup_4w: {speedup:.2f}x (floor {min_speedup:.2f}x)")
        if speedup < float(min_speedup):
            failures.append(
                f"4-worker speedup {speedup:.2f}x below floor "
                f"{min_speedup:.2f}x")

    max_ckpt_overhead = baseline.get("max_ckpt_overhead")
    if max_ckpt_overhead is not None:
        if "ckpt_overhead" not in current:
            failures.append("current run emitted no ckpt_overhead")
        else:
            overhead = float(current["ckpt_overhead"])
            print(f"ckpt_overhead: {100 * overhead:.1f}% "
                  f"(cap {100 * float(max_ckpt_overhead):.0f}%)")
            if overhead > float(max_ckpt_overhead):
                failures.append(
                    f"checkpoint overhead {100 * overhead:.1f}% exceeds cap "
                    f"{100 * float(max_ckpt_overhead):.0f}%")

    min_ratio = baseline.get("min_compression_ratio")
    if min_ratio is not None:
        if "compression_ratio" not in current:
            failures.append("current run emitted no compression_ratio")
        else:
            ratio = float(current["compression_ratio"])
            print(f"compression_ratio: {ratio:.2f}x "
                  f"(floor {float(min_ratio):.2f}x)")
            if ratio < float(min_ratio):
                failures.append(
                    f"store compression {ratio:.2f}x below floor "
                    f"{float(min_ratio):.2f}x")

    if markdown_path is not None:
        write_markdown(markdown_path, current, baseline, md_rows, tolerance,
                       failures)

    if failures:
        print("\nBENCH REGRESSION:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nbench within tolerance of baseline")
    return 0


def write_markdown(path, current, baseline, md_rows, tolerance, failures):
    """Render the lane comparison as a GFM delta table for job summaries."""
    lines = [
        f"### Bench delta: {current.get('bench', 'unknown')} "
        f"(tolerance {100 * tolerance:.0f}%)",
        "",
        "| lane | baseline rec/s | current rec/s | delta | status |",
        "| --- | ---: | ---: | ---: | :---: |",
    ]
    for key, base_tput, cur_tput, status in md_rows:
        if cur_tput is None:
            lines.append(f"| {key} | {base_tput:,.0f} | — | — | {status} |")
            continue
        delta = (cur_tput - base_tput) / base_tput if base_tput else 0.0
        icon = "✅" if status == "ok" else "❌"
        lines.append(
            f"| {key} | {base_tput:,.0f} | {cur_tput:,.0f} | "
            f"{100 * delta:+.1f}% | {icon} {status} |")
    extras = []
    if "speedup_4w" in current:
        extras.append(f"4-worker speedup {float(current['speedup_4w']):.2f}x")
    if "ckpt_overhead" in current:
        extras.append(
            f"checkpoint overhead {100 * float(current['ckpt_overhead']):.1f}%")
    extras.append("outputs byte-identical"
                  if current.get("identical", False)
                  else "outputs NOT byte-identical")
    lines += ["", "; ".join(extras) + ".", ""]
    if failures:
        lines.append("**Gate failures:**")
        lines += [f"- {f}" for f in failures]
        lines.append("")
    with open(path, "w") as f:
        f.write("\n".join(lines) + "\n")


def self_test():
    """Exercise the gate against crafted current/baseline pairs and check
    each exits with the expected status. Run by ctest (bench_gate_selftest)
    and the CI bench-smoke job."""
    import contextlib
    import io
    import os
    import tempfile

    def run_case(name, current, baseline, expect, extra_flags=()):
        with tempfile.TemporaryDirectory() as tmp:
            cur_path = os.path.join(tmp, "current.json")
            base_path = os.path.join(tmp, "baseline.json")
            with open(cur_path, "w") as f:
                json.dump(current, f)
            with open(base_path, "w") as f:
                json.dump(baseline, f)
            out = io.StringIO()
            with contextlib.redirect_stdout(out), \
                    contextlib.redirect_stderr(out):
                got = main(["check", cur_path, base_path, *extra_flags])
        ok = got == expect
        print(f"{'ok  ' if ok else 'FAIL'} {name} "
              f"(expected exit {expect}, got {got})")
        if not ok:
            print(out.getvalue())
        return ok

    ok_run = {
        "identical": True,
        "rows": [{"lane": "1.10x", "p99_close_ms": 700.0,
                  "records_per_s": 100000}],
    }
    capped = {
        "rows": [{"lane": "1.10x", "max_p99_close_ms": 1000.0}],
    }
    results = [
        run_case("cap respected passes", ok_run, capped, 0),
        run_case("cap exceeded fails",
                 {"identical": True,
                  "rows": [{"lane": "1.10x", "p99_close_ms": 1500.0}]},
                 capped, 1),
        run_case("capped metric missing from current fails",
                 {"identical": True, "rows": [{"lane": "1.10x"}]},
                 capped, 1),
        run_case("identical=false fails with custom identity_check",
                 {"identical": False,
                  "identity_check": "accounting did not reconcile",
                  "rows": [{"lane": "1.10x", "p99_close_ms": 1.0}]},
                 capped, 1),
        run_case("baseline lane missing from current fails",
                 {"identical": True, "rows": []}, capped, 1),
        run_case("new lane rejected without --allow-new-lanes",
                 {"identical": True,
                  "rows": [{"lane": "1.10x", "p99_close_ms": 1.0},
                           {"lane": "2.00x"}]},
                 capped, 1),
        run_case("new lane accepted with --allow-new-lanes",
                 {"identical": True,
                  "rows": [{"lane": "1.10x", "p99_close_ms": 1.0},
                           {"lane": "2.00x"}]},
                 capped, 0, ("--allow-new-lanes",)),
        run_case("throughput regression beyond tolerance fails",
                 {"identical": True,
                  "rows": [{"workers": 2, "records_per_s": 50000}]},
                 {"rows": [{"workers": 2, "records_per_s": 100000}]}, 1),
        run_case("throughput within tolerance passes",
                 {"identical": True,
                  "rows": [{"workers": 2, "records_per_s": 90000}]},
                 {"rows": [{"workers": 2, "records_per_s": 100000}]}, 0),
        run_case("speedup floor violation fails",
                 {"identical": True, "speedup_4w": 1.2, "rows": []},
                 {"min_speedup_4w": 2.5, "rows": []}, 1),
    ]
    # --markdown writes a delta table containing every lane and the verdict.
    with tempfile.TemporaryDirectory() as tmp:
        cur_path = os.path.join(tmp, "current.json")
        base_path = os.path.join(tmp, "baseline.json")
        md_path = os.path.join(tmp, "delta.md")
        with open(cur_path, "w") as f:
            json.dump({"identical": True, "speedup_4w": 3.0,
                       "rows": [{"workers": 2, "records_per_s": 90000}]}, f)
        with open(base_path, "w") as f:
            json.dump({"rows": [{"workers": 2, "records_per_s": 100000}]}, f)
        out = io.StringIO()
        with contextlib.redirect_stdout(out), \
                contextlib.redirect_stderr(out):
            got = main(["check", cur_path, base_path,
                        f"--markdown={md_path}"])
        with open(md_path) as f:
            md = f.read()
        ok = (got == 0 and "workers=2" in md and "-10.0%" in md and
              "byte-identical" in md)
        print(f"{'ok  ' if ok else 'FAIL'} markdown table emitted "
              f"(exit {got})")
        if not ok:
            print(md)
        results.append(ok)

    if all(results):
        print("self-test: PASS")
        return 0
    print("self-test: FAIL", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
